"""SIC format: CSR with Segmented Interleave Combination (Feng et al. [13]).

The one comparison the paper could NOT run: "Since their implementation
was not available, it was not feasible to perform an experimental
performance comparison with ACSR" (Section IX).  This module supplies the
missing comparator from the paper's own description: SIC "put[s] rows
into 3 segments and combine[s] data in each segment by interleaving rows
into blocks", and — like BCCOO/BRC/TCOO — "requires expensive
preprocessing operations such as sorting and re-formatting".

Implementation per that description:

* rows are classified into three segments by length (short / medium /
  long, thresholds at 8 and 64 non-zeros);
* within each segment, consecutive rows are interleaved into 32-row
  blocks stored column-major at the block's max width (an ELL slab per
  block), so a warp reads 32 different rows' k-th elements in one
  coalesced transaction;
* the long segment bounds its block width by splitting rows, BRC-style.

Preprocessing pays the classification scan, the full data re-format, and
a stable per-segment ordering — landing its Figure 4 bill between HYB's
and BRC's, as its design suggests.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DEFAULT_HOST, DeviceSpec, INDEX_BYTES, Precision
from ..gpu.kernel import KernelWork, merge_concurrent
from ..kernels import brc_kernel
from .base import PreprocessReport, SpMVFormat, transfer_report_s
from .brc import split_row_lengths
from .csr import CSRMatrix

#: Segment boundaries on row length (inclusive upper bounds; the last
#: segment is unbounded but width-limited by row splitting).
SEGMENT_BOUNDS = (8, 64)

#: Rows interleaved per block (one warp's worth).
BLOCK_ROWS = 32

#: Width cap for the long segment's blocks.
MAX_LONG_WIDTH = 256


def classify_segments(lengths: np.ndarray) -> np.ndarray:
    """Segment index (0/1/2) per row; empty rows stay in segment 0."""
    lengths = np.asarray(lengths, dtype=np.int64)
    seg = np.zeros(lengths.shape[0], dtype=np.int64)
    seg[lengths > SEGMENT_BOUNDS[0]] = 1
    seg[lengths > SEGMENT_BOUNDS[1]] = 2
    return seg


class SICFormat(SpMVFormat):
    """Three length segments, each interleaved into ELL-style blocks."""

    name = "sic"

    def __init__(
        self,
        blocks: list[tuple[int, int, int]],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
        stored_slots: int,
        segment_rows: tuple[int, int, int],
        preprocess: PreprocessReport,
        profile,
    ) -> None:
        #: ``(n_rows, width, real_nnz)`` per interleave block.
        self.blocks = blocks
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self._shape = shape
        self.stored_slots = stored_slots
        #: Row counts of the short/medium/long segments.
        self.segment_rows = segment_rows
        self.preprocess = preprocess
        self._profile = profile

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "SICFormat":
        """Build from CSR.  Accepts no kwargs; unknown kwargs raise
        ``TypeError``."""
        lengths = csr.nnz_per_row
        seg = classify_segments(lengths)

        blocks: list[tuple[int, int, int]] = []
        stored = 0
        seg_counts = []
        for s in (0, 1, 2):
            members = np.nonzero(seg == s)[0]
            seg_counts.append(int(members.shape[0]))
            seg_lengths = lengths[members]
            if s == 2:
                # Long rows are split so no block exceeds the width cap.
                seg_lengths, _owner = split_row_lengths(
                    seg_lengths, MAX_LONG_WIDTH
                )
            n = int(seg_lengths.shape[0])
            if n == 0:
                continue
            starts = np.arange(0, n, BLOCK_ROWS, dtype=np.int64)
            ends = np.minimum(starts + BLOCK_ROWS, n)
            csum = np.concatenate(([0], np.cumsum(seg_lengths)))
            sums = csum[ends] - csum[starts]
            if s == 0:
                # The *Combination* of SIC: several short rows share one
                # interleave lane, so the block packs to its mean
                # occupancy rather than padding to its max.
                widths = np.maximum(1, -(-sums // BLOCK_ROWS))
                slots = np.full(starts.shape[0], BLOCK_ROWS) * widths
            else:
                widths = np.maximum.reduceat(seg_lengths, starts)
                slots = (ends - starts) * widths
            keep = sums > 0
            blocks.extend(
                (int(e - st), int(w), int(sm))
                for st, e, w, sm in zip(
                    starts[keep], ends[keep], widths[keep], sums[keep]
                )
            )
            stored += int(np.sum(slots[keep]))

        coo_rows = np.repeat(
            np.arange(csr.n_rows, dtype=np.int64), lengths
        ).astype(np.int32)

        vb = csr.precision.value_bytes
        device_bytes = (
            stored * (vb + INDEX_BYTES)
            + csr.n_rows * INDEX_BYTES
            + (csr.n_rows + csr.n_cols) * vb
        )
        report = PreprocessReport(
            format_name=cls.name,
            # Classification scan + full interleaved re-format (a
            # gather/scatter per stored slot) + per-segment ordering.
            host_s=(
                DEFAULT_HOST.stream_time(csr.n_rows + 2 * csr.nnz + stored)
                + DEFAULT_HOST.sort_time(seg_counts[2] or 1)
            ),
            transfer_s=transfer_report_s(device_bytes),
            device_bytes=device_bytes,
            padding_fraction=(
                0.0 if stored == 0 else 1.0 - csr.nnz / stored
            ),
            notes=(
                f"segments short/med/long = "
                f"{seg_counts[0]}/{seg_counts[1]}/{seg_counts[2]}, "
                f"blocks={len(blocks)}"
            ),
        )
        return cls(
            blocks=blocks,
            rows=coo_rows,
            cols=csr.col_idx.copy(),
            vals=csr.values.copy(),
            shape=csr.shape,
            stored_slots=stored,
            segment_rows=tuple(seg_counts),
            preprocess=report,
            profile=csr.gather_profile,
        )

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def precision(self) -> Precision:
        return (
            Precision.SINGLE
            if self.vals.dtype == np.float32
            else Precision.DOUBLE
        )

    def multiply(self, x: np.ndarray) -> np.ndarray:
        n_rows = self._shape[0]
        y = np.zeros(n_rows, dtype=x.dtype)
        if self.nnz:
            prod = self.vals.astype(np.float64, copy=False) * x.astype(
                np.float64, copy=False
            )[self.cols]
            y += np.bincount(
                self.rows, weights=prod, minlength=n_rows
            ).astype(y.dtype, copy=False)
        return y

    def _spmm_triplets(self):
        return self.rows, self.cols, self.vals

    def kernel_works(self, device: DeviceSpec, k: int = 1) -> list[KernelWork]:
        works = brc_kernel.block_works(
            self.blocks,
            device=device,
            n_cols=self.n_cols,
            precision=self.precision,
            profile=self._profile,
            k=k,
        )
        if not works:
            return [KernelWork.empty("sic", self.precision)]
        # Three segment kernels fused into one launch-per-segment pool;
        # modelled as a single pooled execution like the BRC fusion.
        return [merge_concurrent(works, name="sic")]
