"""TCOO format: tile-COO with exhaustive tile search (Yang et al. [28]).

The matrix is split into vertical tiles so each tile's slice of ``x``
stays resident in the texture cache while the tile's elements stream
through a COO kernel.  The tile count is an input parameter found by
exhaustive search (Section V: "we performed an exhaustive search to find
the best number of tiles"), where every candidate pays a transform, a
transfer and a trial run — the ~3k-SpMV preprocessing of Figure 4.
Single precision only, like the reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DEFAULT_HOST, DeviceSpec, GTX_TITAN, INDEX_BYTES, Precision
from ..gpu.kernel import KernelWork
from ..gpu.simulator import simulate_kernel
from ..kernels import tcoo_kernel
from .base import PreprocessReport, SpMVFormat, transfer_report_s
from .csr import CSRMatrix

#: Exhaustively searched tile counts.
TILE_CANDIDATES = tuple(range(1, 129))


class TCOOFormat(SpMVFormat):
    """Column-tiled COO at the searched-optimal tile count."""

    name = "tcoo"

    def __init__(
        self,
        n_tiles: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
        preprocess: PreprocessReport,
        profile,
        tile_order: np.ndarray,
    ) -> None:
        self.n_tiles = n_tiles
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self._shape = shape
        self.preprocess = preprocess
        self._profile = profile
        #: Element permutation grouping elements by tile.
        self.tile_order = tile_order

    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        *,
        tuning_device: DeviceSpec = GTX_TITAN,
        candidates: tuple[int, ...] = TILE_CANDIDATES,
    ) -> "TCOOFormat":
        """Build TCOO by exhaustively searching the tile-count space.

        Accepted kwargs: ``tuning_device`` — the GPU the search is priced
        against (default GTX TITAN); ``candidates`` — tile counts to try
        (default 1..128).  Unknown kwargs raise ``TypeError``.
        """
        if csr.precision is not Precision.SINGLE:
            # Single precision only, like BCCOO (Section V).
            raise ValueError("TCOO supports single precision only")
        if not candidates:
            raise ValueError("need at least one tile-count candidate")

        vb = csr.precision.value_bytes
        data_bytes = csr.nnz * (vb + 2 * INDEX_BYTES)
        best_tiles = None
        best_time = float("inf")
        tuning_s = 0.0
        for t in candidates:
            work = tcoo_kernel.work(
                csr.nnz,
                csr.n_rows,
                t,
                device=tuning_device,
                n_cols=csr.n_cols,
                precision=csr.precision,
                profile=csr.gather_profile,
            )
            trial = simulate_kernel(tuning_device, work).time_s
            # Every candidate re-buckets the elements by tile, ships the
            # layout to the device, and runs one trial.
            tuning_s += (
                DEFAULT_HOST.stream_time(2 * csr.nnz)
                + transfer_report_s(data_bytes)
                + trial
            )
            if trial < best_time:
                best_time = trial
                best_tiles = t
        assert best_tiles is not None

        rows = np.repeat(
            np.arange(csr.n_rows, dtype=np.int64), csr.nnz_per_row
        ).astype(np.int32)
        tile_width = max(1, -(-csr.n_cols // best_tiles))
        tile_of = csr.col_idx.astype(np.int64) // tile_width
        order = np.argsort(tile_of, kind="stable")

        device_bytes = data_bytes + (csr.n_rows + csr.n_cols) * vb
        report = PreprocessReport(
            format_name=cls.name,
            host_s=DEFAULT_HOST.stream_time(2 * csr.nnz),
            transfer_s=transfer_report_s(device_bytes),
            tuning_s=tuning_s,
            device_bytes=device_bytes,
            notes=f"searched {len(candidates)} tile counts -> {best_tiles}",
        )
        return cls(
            n_tiles=best_tiles,
            rows=rows[order],
            cols=csr.col_idx[order].copy(),
            vals=csr.values[order].copy(),
            shape=csr.shape,
            preprocess=report,
            profile=csr.gather_profile,
            tile_order=order,
        )

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def precision(self) -> Precision:
        return (
            Precision.SINGLE
            if self.vals.dtype == np.float32
            else Precision.DOUBLE
        )

    def multiply(self, x: np.ndarray) -> np.ndarray:
        n_rows = self._shape[0]
        y = np.zeros(n_rows, dtype=x.dtype)
        if self.nnz:
            prod = self.vals.astype(np.float64, copy=False) * x.astype(
                np.float64, copy=False
            )[self.cols]
            y += np.bincount(
                self.rows, weights=prod, minlength=n_rows
            ).astype(y.dtype, copy=False)
        return y

    def _spmm_triplets(self):
        return self.rows, self.cols, self.vals

    def kernel_works(self, device: DeviceSpec, k: int = 1) -> list[KernelWork]:
        return [
            tcoo_kernel.work(
                self.nnz,
                self.n_rows,
                self.n_tiles,
                device=device,
                n_cols=self.n_cols,
                precision=self.precision,
                profile=self._profile,
                k=k,
            )
        ]
