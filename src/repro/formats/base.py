"""Format base classes: preprocessing accounting + the SpMV entry point.

Every sparse format in this package answers three questions the paper's
evaluation asks:

1. *what does it cost to build you from CSR?* — :class:`PreprocessReport`
   (host transform + tuning + transfer), the quantity of Figure 4 and the
   ``PT`` term of Equations 2–4;
2. *what is your SpMV result?* — ``multiply`` (exact, vectorised NumPy,
   validated against SciPy in the tests);
3. *what does one SpMV cost on a device?* — ``kernel_works`` feeding the
   simulator, the ``ST`` term.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..gpu.device import DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.simulator import KernelTiming, simulate_sequence
from ..gpu.transfer import DEFAULT_LINK, PCIeLink


class FormatCapacityError(RuntimeError):
    """The format cannot represent this matrix within sane memory bounds.

    Corresponds to the ``∅`` cells of Tables III/IV ("the format is not
    able to handle the matrix due to memory limitation").
    """


@dataclass(frozen=True)
class PreprocessReport:
    """Everything a format spent before its first SpMV could run.

    Accounting follows Figure 4: all formats start from CSR data already
    resident on the device, so ``total_s`` (the paper's ``PT``) counts the
    *transformation* — host transform + tuning + device-side scans — and
    NOT the baseline copy.  ``transfer_s`` records the cost of shipping
    this format's own arrays, which the dynamic-graph pipeline
    (Section VII) charges every epoch for formats that must re-copy.
    """

    format_name: str
    #: Host-side transformation time (scans, sorts, packing), seconds.
    host_s: float
    #: Host->device copy of the format's data, seconds.
    transfer_s: float
    #: Auto-tuning time that scales with the matrix (transforms, trial
    #: runs), seconds.
    tuning_s: float = 0.0
    #: Auto-tuning time that does NOT scale with the matrix (per-config
    #: kernel compiles), seconds.  Kept separate so the harness can
    #: extrapolate analog-scale measurements to paper scale.
    tuning_fixed_s: float = 0.0
    #: Device-side preprocessing kernels (ACSR's binning scan), seconds.
    device_s: float = 0.0
    #: Device memory footprint of the format's data, bytes.
    device_bytes: int = 0
    #: Fraction of stored entries that are padding (HYB averages ~33%).
    padding_fraction: float = 0.0
    notes: str = ""

    def __post_init__(self) -> None:
        for name in (
            "host_s",
            "transfer_s",
            "tuning_s",
            "tuning_fixed_s",
            "device_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.padding_fraction <= 1.0:
            raise ValueError("padding_fraction must be in [0, 1]")

    @property
    def total_s(self) -> float:
        """The paper's ``PT``: transformation + tuning (transfer excluded)."""
        return self.host_s + self.tuning_s + self.tuning_fixed_s + self.device_s

    def scalable_s(self) -> float:
        """The portion of ``PT`` that grows with matrix size."""
        return self.host_s + self.tuning_s + self.device_s


@dataclass(frozen=True)
class SpMVResult:
    """One SpMV's numeric output plus its modelled execution time."""

    y: np.ndarray
    time_s: float
    timings: tuple[KernelTiming, ...]
    flops: float

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


@dataclass(frozen=True)
class SpMMResult:
    """One batched SpMM's numeric output plus its modelled execution time.

    ``Y`` has shape ``(n_rows, k)``: column ``j`` is ``A @ X[:, j]``.  The
    modelled time covers ONE batched launch sequence over all ``k``
    vectors, not ``k`` sequential SpMVs — comparing ``time_s`` against
    ``k * spmv_time_s`` gives the amortisation win.
    """

    Y: np.ndarray
    time_s: float
    timings: tuple[KernelTiming, ...]
    flops: float
    #: Vector-block width of the batch.
    k: int

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


class SpMVFormat(abc.ABC):
    """A sparse-matrix representation with an SpMV kernel suite.

    Subclasses are built with :meth:`from_csr` and are immutable
    afterwards.  ``self.preprocess`` must be populated by construction.
    """

    #: Registry name, e.g. ``"hyb"``.
    name: str = "abstract"

    preprocess: PreprocessReport

    # -- construction ---------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def from_csr(cls, csr, **kwargs) -> "SpMVFormat":
        """Build the format (and its preprocessing bill) from CSR."""

    # -- shape ----------------------------------------------------------
    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]: ...

    @property
    @abc.abstractmethod
    def nnz(self) -> int: ...

    @property
    @abc.abstractmethod
    def precision(self) -> Precision: ...

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    # -- compute --------------------------------------------------------
    @abc.abstractmethod
    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Exact ``y = A @ x`` using this format's data layout."""

    @abc.abstractmethod
    def kernel_works(self, device: DeviceSpec, k: int = 1) -> list[KernelWork]:
        """The launches of one SpMV (``k=1``) or one ``k``-wide SpMM.

        ``k`` is the vector-block width: the batched launch multiplies the
        matrix by ``k`` right-hand-side vectors at once, charging matrix
        traffic once but ``x``/``y`` traffic and flops per vector.  Every
        implementation must return byte-identical works for ``k=1`` and
        the historical single-vector path.
        """

    def cached_kernel_works(
        self, device: DeviceSpec, k: int = 1
    ) -> list[KernelWork]:
        """:meth:`kernel_works`, memoised per ``(format, device, k)``.

        Formats are immutable after construction and :class:`KernelWork`
        is frozen, so the launch list of one SpMV never changes — yet
        ``spmv_time_s`` / ``trace`` / ``run_spmv`` historically rebuilt it
        on every call.  The cache keys on the device name and the
        vector-block width (a format instance has a fixed matrix and
        precision) and is dropped with the instance itself.
        """
        cache = getattr(self, "_kernel_works_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_kernel_works_cache", cache)
        works = cache.get((device.name, k))
        if works is None:
            works = self.kernel_works(device, k=k)
            cache[(device.name, k)] = works
        return works

    def device_bytes(self) -> int:
        """Device footprint (format data + x + y)."""
        return self.preprocess.device_bytes

    # -- shared entry points ---------------------------------------------
    def spmv_time_s(self, device: DeviceSpec) -> float:
        """Modelled time of one SpMV on ``device`` (the paper's ``ST``)."""
        return simulate_sequence(device, self.cached_kernel_works(device)).time_s

    def trace(self, device: DeviceSpec):
        """A :class:`~repro.gpu.trace.KernelTrace` of one SpMV's launches."""
        from ..gpu.simulator import simulate_kernel
        from ..gpu.trace import KernelTrace

        tr = KernelTrace(device_name=device.name)
        for work in self.cached_kernel_works(device):
            tr.add_span(
                f"launch {work.name}",
                device.kernel_launch_overhead_s,
                category="overhead",
            )
            tr.append_timing(
                simulate_kernel(
                    device, work, include_launch_overhead=False
                )
            )
        return tr

    def run_spmv(self, x: np.ndarray, device: DeviceSpec) -> SpMVResult:
        """Execute numerically and model the time in one call."""
        x = np.asarray(x, dtype=self.precision.numpy_dtype)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},)")
        y = self.multiply(x)
        works = self.cached_kernel_works(device)
        seq = simulate_sequence(device, works)
        flops = sum(w.flops for w in works)
        return SpMVResult(
            y=y, time_s=seq.time_s, timings=seq.timings, flops=flops
        )

    # -- batched (SpMM) entry points --------------------------------------
    def _spmm_triplets(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """``(rows, cols, vals)`` when :meth:`multiply` is the standard
        segmented-reduction triplet kernel, else ``None``.

        Formats whose single-vector product is exactly
        :func:`repro.kernels.coo_segmented.execute` over stored triplets
        (COO, TCOO, BCCOO, BRC, SIC) return them here, which routes
        :meth:`multiply_many` through the batched array-level SpMM
        instead of a Python column loop.  Formats with any other
        ``multiply`` must leave this ``None`` (or override
        :meth:`multiply_many` themselves) to keep the bitwise
        column-equivalence contract.
        """
        return None

    def multiply_many(self, X: np.ndarray) -> np.ndarray:
        """Exact ``Y = A @ X`` for a block of vectors.

        ``X`` has shape ``(n_cols, k)``; the result has ``(n_rows, k)``.
        Every column of the result is *bitwise identical* to the
        corresponding single-vector :meth:`multiply` — formats may
        vectorise (via :meth:`_spmm_triplets` or an override) only if
        they preserve that equivalence.  Formats without a declared
        array-level path fall back to looping :meth:`multiply` over
        columns.
        """
        X = np.asarray(X, dtype=self.precision.numpy_dtype)
        if X.ndim != 2 or X.shape[0] != self.n_cols:
            raise ValueError(f"X must have shape ({self.n_cols}, k)")
        if X.shape[1] < 1:
            raise ValueError("X must have at least one column")
        triplets = self._spmm_triplets()
        if triplets is not None:
            from ..kernels import coo_segmented

            rows, cols, vals = triplets
            return coo_segmented.execute_many(
                rows, cols, vals, X, n_rows=self.n_rows
            )
        return np.stack(
            [self.multiply(X[:, j]) for j in range(X.shape[1])], axis=1
        )

    def spmm_time_s(self, device: DeviceSpec, k: int = 1) -> float:
        """Modelled time of one ``k``-wide batched SpMM on ``device``.

        ``spmm_time_s(device, 1) == spmv_time_s(device)`` exactly — the
        ``k=1`` batch runs the very same launch sequence.
        """
        return simulate_sequence(
            device, self.cached_kernel_works(device, k=k)
        ).time_s

    def run_spmm(self, X: np.ndarray, device: DeviceSpec) -> SpMMResult:
        """Execute ``Y = A @ X`` numerically and model one batched launch.

        The numeric result matches :meth:`multiply_many`; the modelled
        time is ONE SpMM over all ``X.shape[1]`` columns, which is what a
        batched server would launch instead of ``k`` SpMVs.
        """
        X = np.asarray(X, dtype=self.precision.numpy_dtype)
        if X.ndim != 2 or X.shape[0] != self.n_cols:
            raise ValueError(f"X must have shape ({self.n_cols}, k)")
        k = X.shape[1]
        if k < 1:
            raise ValueError("X must have at least one column")
        Y = self.multiply_many(X)
        works = self.cached_kernel_works(device, k=k)
        seq = simulate_sequence(device, works)
        flops = sum(w.flops for w in works)
        return SpMMResult(
            Y=Y, time_s=seq.time_s, timings=seq.timings, flops=flops, k=k
        )


def transfer_report_s(
    device_bytes: int, link: PCIeLink | None = None, n_transfers: int = 3
) -> float:
    """Helper: copy time for a format's device arrays."""
    link = link or DEFAULT_LINK
    return link.transfer_time_s(device_bytes, n_transfers=n_transfers)
