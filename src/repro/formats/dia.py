"""DIA format: per-diagonal dense storage.

Bell & Garland [5] show DIA is "the superior format for structural
matrices which have non-zeros on only a few diagonals" (Section IX).  It
is hopeless for graphs — a power-law adjacency matrix touches almost every
diagonal — so, like ELL, it carries a capacity guard and exists to round
out the related-work comparison set and the format-selection example.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DEFAULT_HOST, DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.memory import coalesced_bytes
from ..gpu.warp import WARP_SIZE
from ..kernels.common import INST_PER_ITER, ROW_SETUP_INSTS, launch_for_threads
from .base import (
    FormatCapacityError,
    PreprocessReport,
    SpMVFormat,
    transfer_report_s,
)
from .csr import CSRMatrix

#: Refuse to materialise more than this many diagonal slots.
MAX_SLOTS = 200_000_000


class DIAFormat(SpMVFormat):
    """Dense storage of every occupied diagonal."""

    name = "dia"

    def __init__(
        self,
        offsets: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        real_nnz: int,
        preprocess: PreprocessReport,
    ) -> None:
        self.offsets = offsets
        self.data = data  # (n_diags, n_rows)
        self._shape = shape
        self.real_nnz = real_nnz
        self.preprocess = preprocess

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "DIAFormat":
        """Build from CSR.  Accepts no kwargs; unknown kwargs raise
        ``TypeError``."""
        rows = np.repeat(
            np.arange(csr.n_rows, dtype=np.int64), csr.nnz_per_row
        )
        diags = csr.col_idx.astype(np.int64) - rows
        offsets = np.unique(diags)
        n_diags = offsets.shape[0]
        if n_diags * csr.n_rows > MAX_SLOTS:
            raise FormatCapacityError(
                f"DIA would need {n_diags} diagonals x {csr.n_rows} rows"
            )
        data = np.zeros((n_diags, csr.n_rows), dtype=csr.values.dtype)
        diag_pos = np.searchsorted(offsets, diags)
        data[diag_pos, rows] = csr.values
        vb = csr.precision.value_bytes
        slots = n_diags * csr.n_rows
        device_bytes = slots * vb + n_diags * 4 + (
            csr.n_rows + csr.n_cols
        ) * vb
        report = PreprocessReport(
            format_name=cls.name,
            host_s=DEFAULT_HOST.stream_time(slots + csr.nnz),
            transfer_s=transfer_report_s(device_bytes),
            device_bytes=device_bytes,
            padding_fraction=0.0 if slots == 0 else 1.0 - csr.nnz / slots,
            notes=f"diagonals={n_diags}",
        )
        return cls(offsets, data, csr.shape, csr.nnz, report)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self.real_nnz

    @property
    def n_diags(self) -> int:
        return int(self.offsets.shape[0])

    @property
    def precision(self) -> Precision:
        return (
            Precision.SINGLE
            if self.data.dtype == np.float32
            else Precision.DOUBLE
        )

    def multiply(self, x: np.ndarray) -> np.ndarray:
        n_rows, n_cols = self._shape
        y = np.zeros(n_rows, dtype=np.float64)
        rows = np.arange(n_rows, dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = rows + off
            valid = (cols >= 0) & (cols < n_cols)
            y[valid] += (
                self.data[d, valid].astype(np.float64)
                * x.astype(np.float64)[cols[valid]]
            )
        return y.astype(x.dtype, copy=False)

    def multiply_many(self, X: np.ndarray) -> np.ndarray:
        # Same per-diagonal accumulation order as `multiply`, widened
        # over the vector block: each column sees the identical sequence
        # of elementwise multiply-adds, so columns stay bitwise equal to
        # the single-vector product.
        X = np.asarray(X, dtype=self.precision.numpy_dtype)
        n_rows, n_cols = self._shape
        if X.ndim != 2 or X.shape[0] != n_cols:
            raise ValueError(f"X must have shape ({n_cols}, k)")
        if X.shape[1] < 1:
            raise ValueError("X must have at least one column")
        Xf = X.astype(np.float64)
        Y = np.zeros((n_rows, X.shape[1]), dtype=np.float64)
        rows = np.arange(n_rows, dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = rows + off
            valid = (cols >= 0) & (cols < n_cols)
            Y[valid, :] += (
                self.data[d, valid].astype(np.float64)[:, None]
                * Xf[cols[valid], :]
            )
        return Y.astype(X.dtype, copy=False)

    def kernel_works(self, device: DeviceSpec, k: int = 1) -> list[KernelWork]:
        if k < 1:
            raise ValueError("k must be >= 1")
        n_rows = self._shape[0]
        if n_rows == 0 or self.n_diags == 0:
            return [KernelWork.empty("dia", self.precision)]
        vb = self.precision.value_bytes
        n_warps = -(-n_rows // WARP_SIZE)
        # One fully coalesced iteration per diagonal; x accesses along a
        # diagonal are sequential, so they stream rather than gather.
        # Every warp is identical, so one weighted entry describes all.
        compute = np.full(
            1,
            self.n_diags * INST_PER_ITER + ROW_SETUP_INSTS,
            dtype=np.float64,
        )
        per_iter = coalesced_bytes(WARP_SIZE * vb) * 2.0  # data + x stream
        dram = np.full(1, self.n_diags * per_iter, dtype=np.float64)
        if k > 1:
            from ..kernels.common import INST_PER_EXTRA_VEC

            compute = compute + (k - 1) * (
                self.n_diags * INST_PER_EXTRA_VEC + 1.0
            )
            # The diagonal data streams once; the x stream and y writes
            # repeat per extra vector of the block.
            x_stream = coalesced_bytes(WARP_SIZE * vb)
            dram = dram + (k - 1) * self.n_diags * x_stream
        return [
            KernelWork(
                name="dia",
                compute_insts=compute,
                dram_bytes=dram,
                mem_ops=np.full(1, float(self.n_diags)),
                flops=2.0 * self.real_nnz * k,
                precision=self.precision,
                launch=launch_for_threads(n_rows),
                warp_weights=np.full(1, float(n_warps)),
                k=k,
            )
        ]
