"""BCCOO format: blocked compressed COO with auto-tuning (Yan et al. [27]).

Non-zeros are grouped into small dense blocks; per-element row indices
collapse into a bit-flag stream and column indices are delta-encoded, so
index traffic drops to about a byte per element and the kernel runs a
matrix-wide segmented scan.  The tuned kernel is the fastest single SpMV
in the paper's comparison set — but finding the right configuration means
searching a >300-point space where every point costs a kernel compile, a
data transform and a trial run.  That search is the ~161k-SpMV
preprocessing bill of Figure 4, and it is reproduced here as an *actual
search loop* over the same space, each trial priced by the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import DEFAULT_HOST, DeviceSpec, GTX_TITAN, Precision
from ..gpu.kernel import KernelWork
from ..gpu.simulator import simulate_kernel
from ..util import count_unique
from ..kernels import bccoo_kernel
from .base import PreprocessReport, SpMVFormat, transfer_report_s
from .csr import CSRMatrix

#: Block geometry candidates (height x width).
BLOCK_HEIGHTS = (1, 2, 4, 8)
BLOCK_WIDTHS = (1, 2, 4, 8)
#: Kernel-shape candidates explored per geometry (workgroup size,
#: elements-per-thread, texture on/off) — 4*4*24 = 384 points, matching
#: the paper's "more than 300 different settings".
WORKGROUPS = (64, 128, 256)
ELEMS_PER_THREAD = (1, 2, 4, 8)
TEXTURE = (False, True)


@dataclass(frozen=True)
class BCCOOConfig:
    """One point of the auto-tuner's search space."""

    block_h: int
    block_w: int
    workgroup: int
    elems_per_thread: int
    use_texture: bool

    @property
    def key(self) -> tuple[int, int]:
        return (self.block_h, self.block_w)


def all_configs() -> list[BCCOOConfig]:
    """The full search space (384 configurations)."""
    return [
        BCCOOConfig(bh, bw, wg, ept, tex)
        for bh in BLOCK_HEIGHTS
        for bw in BLOCK_WIDTHS
        for wg in WORKGROUPS
        for ept in ELEMS_PER_THREAD
        for tex in TEXTURE
    ]


def stored_elements(csr: CSRMatrix, block_h: int, block_w: int) -> int:
    """Dense-block slot count for one geometry (blocks store padding)."""
    if csr.nnz == 0:
        return 0
    rows = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.nnz_per_row)
    block_ids = (rows // block_h) * (
        -(-csr.n_cols // block_w)
    ) + csr.col_idx.astype(np.int64) // block_w
    n_blocks = count_unique(block_ids)
    return n_blocks * block_h * block_w


#: Kernel-efficiency penalty for non-optimal kernel-shape knobs; the tuned
#: optimum has factor 1.0 and detuned points run up to ~40% slower.
def _shape_penalty(cfg: BCCOOConfig) -> float:
    penalty = 1.0
    if cfg.workgroup != 128:
        penalty *= 1.08
    if cfg.elems_per_thread not in (2, 4):
        penalty *= 1.12
    if not cfg.use_texture:
        penalty *= 1.15
    return penalty


class BCCOOFormat(SpMVFormat):
    """Auto-tuned blocked compressed COO."""

    name = "bccoo"

    def __init__(
        self,
        config: BCCOOConfig,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
        stored: int,
        preprocess: PreprocessReport,
        profile,
        n_trials: int,
    ) -> None:
        self.config = config
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self._shape = shape
        self.stored = stored
        self.preprocess = preprocess
        self._profile = profile
        #: Number of tuning trials actually executed.
        self.n_trials = n_trials

    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        *,
        tuning_device: DeviceSpec = GTX_TITAN,
        configs: list[BCCOOConfig] | None = None,
    ) -> "BCCOOFormat":
        """Build BCCOO by running the auto-tuner over the config space.

        Accepted kwargs: ``tuning_device`` — the GPU the search is priced
        against (default GTX TITAN); ``configs`` — explicit list of
        :class:`BCCOOConfig` points to search (default: the full 384-point
        space).  Unknown kwargs raise ``TypeError``.

        Tuning is performed against ``tuning_device`` — on hardware the
        search runs on the target GPU, and its bill lands in
        ``preprocess.tuning_s``.
        """
        if csr.precision is not Precision.SINGLE:
            # "BCCOO and TCOO are only available for single precision"
            # (Section V).
            raise ValueError("BCCOO supports single precision only")
        space = configs if configs is not None else all_configs()
        if not space:
            raise ValueError("config space must be non-empty")

        # Storage — and therefore the kernel work — depends only on the
        # block geometry; simulate once per geometry and apply the
        # (multiplicative) kernel-shape penalty per config.
        stored_by_geom: dict[tuple[int, int], int] = {}
        base_time_by_geom: dict[tuple[int, int], float] = {}
        for cfg in space:
            if cfg.key in stored_by_geom:
                continue
            stored = stored_elements(csr, cfg.block_h, cfg.block_w)
            stored_by_geom[cfg.key] = stored
            trial_work = bccoo_kernel.work(
                stored,
                csr.n_rows,
                device=tuning_device,
                n_cols=csr.n_cols,
                precision=csr.precision,
                profile=csr.gather_profile,
            )
            base_time_by_geom[cfg.key] = simulate_kernel(
                tuning_device, trial_work
            ).time_s

        best_cfg: BCCOOConfig | None = None
        best_time = float("inf")
        tuning_s = 0.0  # matrix-size-dependent: transforms + trial runs
        tuning_fixed_s = 0.0  # size-independent: per-config compiles
        # Each geometry pays one transform; every config pays a compile and
        # a trial SpMV.
        transformed: set[tuple[int, int]] = set()
        for cfg in space:
            if cfg.key not in transformed:
                tuning_s += DEFAULT_HOST.stream_time(
                    2 * csr.nnz + stored_by_geom[cfg.key]
                )
                transformed.add(cfg.key)
            tuning_fixed_s += DEFAULT_HOST.compile_cost_s
            trial_time = base_time_by_geom[cfg.key] * _shape_penalty(cfg)
            tuning_s += trial_time
            if trial_time < best_time:
                best_time = trial_time
                best_cfg = cfg
        assert best_cfg is not None

        stored = stored_by_geom[best_cfg.key]
        rows = np.repeat(
            np.arange(csr.n_rows, dtype=np.int64), csr.nnz_per_row
        ).astype(np.int32)
        vb = csr.precision.value_bytes
        device_bytes = (
            stored * vb
            + int(stored * bccoo_kernel.INDEX_BYTES_PER_ELEM)
            + (csr.n_rows + csr.n_cols) * vb
        )
        report = PreprocessReport(
            format_name=cls.name,
            host_s=DEFAULT_HOST.stream_time(2 * csr.nnz + stored),
            transfer_s=transfer_report_s(device_bytes),
            tuning_s=tuning_s,
            tuning_fixed_s=tuning_fixed_s,
            device_bytes=device_bytes,
            padding_fraction=0.0 if stored == 0 else 1.0 - csr.nnz / stored,
            notes=(
                f"tuned over {len(space)} configs -> "
                f"{best_cfg.block_h}x{best_cfg.block_w} blocks, "
                f"wg={best_cfg.workgroup}"
            ),
        )
        return cls(
            config=best_cfg,
            rows=rows,
            cols=csr.col_idx.copy(),
            vals=csr.values.copy(),
            shape=csr.shape,
            stored=stored,
            preprocess=report,
            profile=csr.gather_profile,
            n_trials=len(space),
        )

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def precision(self) -> Precision:
        return (
            Precision.SINGLE
            if self.vals.dtype == np.float32
            else Precision.DOUBLE
        )

    def multiply(self, x: np.ndarray) -> np.ndarray:
        n_rows = self._shape[0]
        y = np.zeros(n_rows, dtype=x.dtype)
        if self.nnz:
            prod = self.vals.astype(np.float64, copy=False) * x.astype(
                np.float64, copy=False
            )[self.cols]
            y += np.bincount(
                self.rows, weights=prod, minlength=n_rows
            ).astype(y.dtype, copy=False)
        return y

    def _spmm_triplets(self):
        return self.rows, self.cols, self.vals

    def kernel_works(self, device: DeviceSpec, k: int = 1) -> list[KernelWork]:
        return [
            bccoo_kernel.work(
                self.stored,
                self.n_rows,
                device=device,
                n_cols=self.n_cols,
                precision=self.precision,
                profile=self._profile,
                real_nnz=self.nnz,
                k=k,
            )
        ]
