"""Span-structured profiler over the simulator's launch stream.

A :class:`Profiler` is a zero-dependency context manager.  While active
it observes every :func:`~repro.gpu.simulator.simulate_kernel` call
(via the simulator's launch-observer hook) and records its
:class:`~repro.obs.counters.CounterSet` into the *current span*; nested
``with profiler.span("pagerank-iter", iter=3):`` blocks give the launch
stream the shape of the computation — per app iteration, per
dynamic-pipeline epoch, per bin grid.

Drivers whose inner loop reuses a *memoised* timing (the app drivers
compute one SpMV cost and bill it per iteration) record counters
explicitly with :meth:`Profiler.record` instead — the span tree is the
same either way.

Every record also feeds the profiler's :class:`MetricsRegistry`
(launch totals, DRAM bytes, flops, a launch-duration histogram), and the
whole tree exports to JSONL / CSV / Chrome counter tracks via
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..gpu.device import DeviceSpec
from ..gpu.kernel import KernelWork
from ..gpu.simulator import (
    KernelTiming,
    add_launch_observer,
    remove_launch_observer,
)
from .counters import CounterSet, aggregate, launch_counters
from .registry import MetricsRegistry


@dataclass
class Span:
    """One named region of the profiled computation."""

    name: str
    attrs: dict = field(default_factory=dict)
    #: Counter sets recorded directly inside this span (not in children).
    records: list[CounterSet] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)
    #: Optional explicit wall-time of the region; when ``None`` the span's
    #: duration is the summed ``time_s`` of everything recorded under it.
    duration_s: float | None = None

    def all_records(self) -> list[CounterSet]:
        """Every counter set under this span, depth-first."""
        out = list(self.records)
        for child in self.children:
            out.extend(child.all_records())
        return out

    def total(self) -> CounterSet | None:
        """Aggregate of everything under the span (``None`` if empty)."""
        records = self.all_records()
        if not records:
            return None
        return aggregate(records, name=self.name)

    @property
    def total_time_s(self) -> float:
        if self.duration_s is not None:
            return self.duration_s
        return sum(cs.time_s for cs in self.all_records())

    def walk(self, path: tuple[str, ...] = ()):
        """Yield ``(path, span)`` pairs depth-first, root included."""
        here = path + (self.name,)
        yield here, self
        for child in self.children:
            yield from child.walk(here)


class Profiler:
    """Collects spans + counters; optionally taps the simulator live.

    Use as a context manager to capture every simulated launch within
    the block::

        prof = Profiler("spmv")
        with prof:
            fmt.spmv_time_s(device)     # launches recorded automatically
        print(prof.root.total())

    or drive it explicitly (``prof.record(cs)``) when launch costs come
    from memoised timings rather than fresh simulation.
    """

    def __init__(
        self, name: str = "profile", registry: MetricsRegistry | None = None
    ) -> None:
        self.name = name
        self.registry = registry or MetricsRegistry()
        self.root = Span(name=name)
        self._stack: list[Span] = [self.root]
        self._active = 0
        self._pause_depth = 0

    # -- span structure -------------------------------------------------
    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a nested named span; records inside land under it."""
        child = Span(name=name, attrs=dict(attrs))
        self.current.children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            popped = self._stack.pop()
            assert popped is child, "span stack corrupted"

    # -- recording ------------------------------------------------------
    def record(self, cs: CounterSet) -> CounterSet:
        """Attach a counter set to the current span + update metrics."""
        self.current.records.append(cs)
        reg = self.registry
        reg.counter("launches_total", "kernel launches recorded").inc(
            cs.n_launches
        )
        reg.counter("dram_bytes_total", "modelled DRAM traffic").inc(
            cs.dram_bytes
        )
        reg.counter("flops_total", "useful floating-point ops").inc(cs.flops)
        reg.counter("device_time_seconds_total", "modelled device time").inc(
            cs.time_s
        )
        reg.counter(
            "dp_children_total", "dynamic-parallelism child grids"
        ).inc(cs.dp_children)
        reg.counter(
            "dp_overflow_total", "children past the pending-launch limit"
        ).inc(cs.dp_overflow)
        reg.histogram(
            "launch_duration_seconds", "per-launch modelled duration"
        ).observe(cs.time_s)
        reg.gauge("achieved_occupancy", "last launch's occupancy").set(
            cs.achieved_occupancy
        )
        reg.gauge(
            "warp_execution_efficiency", "last launch's load balance"
        ).set(cs.warp_execution_efficiency)
        reg.gauge(
            "gld_coalescing_ratio", "last launch's useful-byte fraction"
        ).set(cs.gld_coalescing_ratio)
        return cs

    def record_launch(
        self,
        device: DeviceSpec,
        work: KernelWork,
        timing: KernelTiming,
        **kwargs,
    ) -> CounterSet:
        """Derive counters from a (work, timing) pair and record them."""
        return self.record(launch_counters(device, work, timing, **kwargs))

    # -- live capture ---------------------------------------------------
    def _observe(
        self, device: DeviceSpec, work: KernelWork, timing: KernelTiming
    ) -> None:
        self.record_launch(device, work, timing)

    def __enter__(self) -> "Profiler":
        if self._active == 0:
            add_launch_observer(self._observe)
        self._active += 1
        return self

    def __exit__(self, *exc) -> None:
        self._active -= 1
        if self._active == 0:
            remove_launch_observer(self._observe)

    @contextmanager
    def paused(self):
        """Suspend live capture inside the block.

        Drivers that bill a *memoised* cost per iteration derive their
        per-iteration counters once (which calls ``simulate_kernel``) and
        then :meth:`record` them explicitly each round; deriving under
        ``paused()`` keeps those derivation launches out of the span tree
        even when the profiler is also entered as a context manager.
        Nests safely: only the outermost ``paused()`` detaches and
        re-attaches the observer, so an inner pause cannot resume
        capture while an outer pause is still in force.
        """
        detach = self._active > 0 and self._pause_depth == 0
        self._pause_depth += 1
        if detach:
            remove_launch_observer(self._observe)
        try:
            yield
        finally:
            self._pause_depth -= 1
            if detach:
                add_launch_observer(self._observe)

    # -- results --------------------------------------------------------
    def all_records(self) -> list[CounterSet]:
        return self.root.all_records()

    def total(self) -> CounterSet | None:
        return self.root.total()

    # -- export (delegates; see repro.obs.export) -----------------------
    def to_jsonl(self, path, **meta):
        from .export import write_jsonl

        return write_jsonl(self, path, **meta)

    def to_csv(self, path):
        from .export import write_csv

        return write_csv(self.all_records(), path)

    def to_chrome_counters(self) -> dict:
        from .export import chrome_counter_trace

        return chrome_counter_trace(self.all_records(), name=self.name)
