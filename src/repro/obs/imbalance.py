"""Warp-level load-imbalance statistics (the paper's Figures 2/3 lens).

The paper motivates ACSR with the skew of per-row work in power-law
graphs: a handful of hub rows carry most of the nonzeros, so one warp
("the tail warp") runs long after every other warp has drained.  These
helpers quantify that skew on any :class:`~repro.gpu.kernel.KernelWork`
in two standard numbers:

* :func:`warp_work_gini` — the Gini coefficient of per-warp instruction
  counts (0 = perfectly balanced, →1 = one warp does everything);
* :func:`tail_warp_share` — the fraction of total warp work carried by
  warps whose instruction count exceeds ``threshold ×`` the mean (the
  "tail-warp set" the timeline layer highlights).

Both respect ``warp_weights`` compression, so a weighted work and its
dense expansion score identically, and both are pure observations — they
never touch the timing model.
"""

from __future__ import annotations

import numpy as np

from ..gpu.kernel import KernelWork

#: A warp belongs to the tail-warp set when its instruction count exceeds
#: this multiple of the mean per-warp count.
TAIL_THRESHOLD = 2.0


def _insts_and_weights(work: KernelWork) -> tuple[np.ndarray, np.ndarray]:
    """Per-entry instruction counts and warp multiplicities as float64."""
    insts = np.asarray(work.compute_insts, dtype=np.float64)
    return insts, work._weights()


def warp_work_gini(work: KernelWork) -> float:
    """Weighted Gini coefficient of per-warp instruction counts.

    0.0 for a perfectly uniform launch (every warp issues the same
    instruction count — COO, ELL), approaching 1.0 when a single hub-row
    warp dominates (CSR-vector on a power-law graph).  Empty or zero-work
    launches score 0.0.
    """
    insts, weights = _insts_and_weights(work)
    total_w = float(weights.sum())
    total_x = float(np.sum(insts * weights))
    if insts.size == 0 or total_w <= 0 or total_x <= 0:
        return 0.0
    order = np.argsort(insts, kind="stable")
    x = insts[order]
    w = weights[order]
    cum = np.cumsum(w)
    # Weighted Lorenz form: reduces to the classic (2Σ i·x)/(nΣx) − (n+1)/n
    # when every weight is 1.
    g = float(np.sum(w * x * (2.0 * cum - w)) / (total_w * total_x)) - 1.0
    return max(0.0, min(1.0, g))


def tail_warp_mask(
    work: KernelWork, threshold: float = TAIL_THRESHOLD
) -> np.ndarray:
    """Boolean mask over the work's entries selecting the tail-warp set.

    An entry is in the tail when its instruction count exceeds
    ``threshold`` times the (weight-respecting) mean per-warp count.
    """
    insts, weights = _insts_and_weights(work)
    total_w = float(weights.sum())
    if insts.size == 0 or total_w <= 0:
        return np.zeros(0, dtype=bool)
    mean = float(np.sum(insts * weights)) / total_w
    return insts > threshold * mean


def tail_warp_share(
    work: KernelWork, threshold: float = TAIL_THRESHOLD
) -> float:
    """Fraction of total warp work carried by the tail-warp set.

    0.0 when no warp exceeds ``threshold ×`` the mean (balanced launches:
    every ACSR bin, ELL, COO); close to 1.0 when hub rows dominate.  This
    is the per-row-skew summary the bench harness reports next to Gini.
    """
    insts, weights = _insts_and_weights(work)
    total = float(np.sum(insts * weights))
    if insts.size == 0 or total <= 0:
        return 0.0
    mask = tail_warp_mask(work, threshold)
    share = float(np.sum(insts[mask] * weights[mask])) / total
    return max(0.0, min(1.0, share))


def tail_warp_count(
    work: KernelWork, threshold: float = TAIL_THRESHOLD
) -> int:
    """Number of warps (not entries) in the tail-warp set."""
    mask = tail_warp_mask(work, threshold)
    if mask.size == 0:
        return 0
    _, weights = _insts_and_weights(work)
    return int(round(float(weights[mask].sum())))
