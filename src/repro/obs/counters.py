"""Hardware-style counters derived from the simulator's own quantities.

On real GPUs, CUPTI/nvprof counters (achieved occupancy, gld efficiency,
tex hit rate, DRAM throughput) are the evidence behind every performance
claim; the paper's argument for ACSR — warp-level load balance, coalesced
streams, texture reuse — is made in exactly those terms.  This module
gives the simulator the same vocabulary.

**Coherence by construction.**  A :class:`CounterSet` is built by
:func:`launch_counters` from the *exact* ``(work, timing)`` pair one
:func:`~repro.gpu.simulator.simulate_kernel` call produced: every byte,
flop, and second in a counter is one the timing model already used, so
counters and timings can never disagree.  Derived ratios (``% of peak``)
only divide those quantities by the device's published peaks.

Counter definitions (see ``docs/simulator.md`` for the worked example):

* ``achieved_occupancy`` — resident warps per SM over the architectural
  maximum, exactly :attr:`KernelTiming.occupancy`.
* ``warp_execution_efficiency`` — mean per-warp instruction count over
  the busiest warp's count: 1.0 when every warp does identical work,
  small when one straggler (a power-law hub row) dominates.  This is the
  load-balance number ACSR's binning exists to raise.
* ``gld_coalescing_ratio`` — ideal payload bytes over modelled DRAM
  bytes: the fraction of moved traffic that was actually asked for.
  Sector waste, texture misses, and ELL padding all lower it.
* ``tex_hit_rate`` — the texture-cache hit rate the gather model used
  (``None`` when the launch declared no gather stream).
* ``dram_bw_fraction`` / ``flop_fraction`` — achieved over peak, the two
  roofline axes.
* ``dp_children`` / ``dp_overflow`` — dynamic-parallelism child grids
  enqueued, and how many exceeded the device's pending-launch budget
  (each overflow paid the 8x penalty of Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from ..gpu.device import DeviceSpec, INDEX_BYTES
from ..gpu.kernel import KernelWork
from ..gpu.simulator import KernelTiming

#: Slack for float round-off when validating [0, 1] ratios.
_TOL = 1e-9


def _ratio(num: float, den: float, default: float = 0.0) -> float:
    return num / den if den > 0 else default


@dataclass(frozen=True)
class CounterSet:
    """One launch's (or one aggregate's) hardware-counter snapshot."""

    name: str
    device: str
    #: Host launches this set covers (1 for a single launch).
    n_launches: int
    #: Vector-block width (max across an aggregate).
    k: int
    # -- the timing model's own quantities, verbatim -------------------
    time_s: float
    launch_overhead_s: float
    compute_s: float
    memory_s: float
    critical_path_s: float
    dram_bytes: float
    flops: float
    n_warps: int
    # -- efficiency counters (all in [0, 1]) ---------------------------
    achieved_occupancy: float
    warp_execution_efficiency: float
    gld_coalescing_ratio: float
    tex_hit_rate: float | None
    # -- dynamic parallelism -------------------------------------------
    dp_children: int = 0
    dp_overflow: int = 0
    # -- device peaks (denominators for the % columns) -----------------
    peak_dram_gbps: float = 0.0
    peak_gflops: float = 0.0

    def __post_init__(self) -> None:
        for field_name in (
            "achieved_occupancy",
            "warp_execution_efficiency",
            "gld_coalescing_ratio",
        ):
            v = getattr(self, field_name)
            if not -_TOL <= v <= 1.0 + _TOL:
                raise ValueError(f"{field_name}={v} outside [0, 1]")
        if self.tex_hit_rate is not None and not (
            -_TOL <= self.tex_hit_rate <= 1.0 + _TOL
        ):
            raise ValueError("tex_hit_rate outside [0, 1]")
        if self.time_s < 0 or self.dram_bytes < 0 or self.flops < 0:
            raise ValueError("counter totals must be non-negative")
        if self.dp_overflow > self.dp_children:
            raise ValueError("dp_overflow cannot exceed dp_children")

    # -- derived ratios -------------------------------------------------
    @property
    def bound(self) -> str:
        """Roofline verdict — the same rule as ``KernelTiming.bound``."""
        body = self.time_s - self.launch_overhead_s
        if body <= 0:
            return "launch"
        terms = {
            "compute": self.compute_s,
            "memory": self.memory_s,
            "latency": self.critical_path_s,
        }
        return max(terms, key=terms.get)  # type: ignore[arg-type]

    @property
    def launch_overhead_share(self) -> float:
        """Fraction of total time spent in host launch overhead."""
        return min(1.0, _ratio(self.launch_overhead_s, self.time_s))

    @property
    def achieved_dram_gbps(self) -> float:
        return _ratio(self.dram_bytes, self.time_s) / 1e9

    @property
    def dram_bw_fraction(self) -> float:
        """Achieved DRAM bandwidth as a fraction of the device peak."""
        return _ratio(self.achieved_dram_gbps, self.peak_dram_gbps)

    @property
    def gflops(self) -> float:
        return _ratio(self.flops, self.time_s) / 1e9

    @property
    def flop_fraction(self) -> float:
        """Achieved flop rate as a fraction of the device peak."""
        return _ratio(self.gflops, self.peak_gflops)


def _warp_execution_efficiency(work: KernelWork) -> float:
    """Mean per-warp instructions over the busiest warp's instructions."""
    if work.n_entries == 0:
        return 1.0
    insts = np.asarray(work.compute_insts, dtype=np.float64)
    peak = float(insts.max())
    if peak <= 0:
        return 1.0
    weights = work._weights()
    mean = float(np.sum(insts * weights) / np.sum(weights))
    return min(1.0, mean / peak)


def _useful_bytes_estimate(work: KernelWork) -> float:
    """Fallback ideal payload when a kernel declared no hints.

    ``flops / (2k)`` recovers the element count of an SpMV-shaped launch;
    each element's value + index moving once is the floor any kernel must
    pay.  Kernels with richer knowledge attach
    :class:`~repro.gpu.kernel.CounterHints` instead.
    """
    elements = work.flops / (2.0 * max(1, work.k))
    return elements * (work.precision.value_bytes + INDEX_BYTES)


def _coalescing_ratio(work: KernelWork, dram_bytes: float) -> float:
    if dram_bytes <= 0:
        return 1.0
    if work.hints is not None and work.hints.useful_bytes is not None:
        useful = work.hints.useful_bytes
    else:
        useful = _useful_bytes_estimate(work)
        if useful <= 0:
            # A launch that moves bytes but declares no flops and no
            # hints (pure control/copy work): nothing to waste against.
            return 1.0
    return max(0.0, min(1.0, useful / dram_bytes))


def launch_counters(
    device: DeviceSpec,
    work: KernelWork,
    timing: KernelTiming,
    *,
    dp_children: int = 0,
    dp_overflow: int = 0,
) -> CounterSet:
    """The :class:`CounterSet` of one simulated launch.

    ``work`` and ``timing`` must be the pair one ``simulate_kernel`` call
    consumed and produced — every counter is read straight off them.
    """
    return CounterSet(
        name=timing.name,
        device=device.name,
        n_launches=1,
        k=timing.k,
        time_s=timing.time_s,
        launch_overhead_s=timing.launch_overhead_s,
        compute_s=timing.compute_s,
        memory_s=timing.memory_s,
        critical_path_s=timing.critical_path_s,
        dram_bytes=timing.dram_bytes,
        flops=work.flops,
        n_warps=timing.n_warps,
        achieved_occupancy=min(1.0, timing.occupancy),
        warp_execution_efficiency=_warp_execution_efficiency(work),
        gld_coalescing_ratio=_coalescing_ratio(work, timing.dram_bytes),
        tex_hit_rate=(
            work.hints.tex_hit_rate if work.hints is not None else None
        ),
        dp_children=dp_children,
        dp_overflow=dp_overflow,
        peak_dram_gbps=device.dram_bandwidth_gbps,
        peak_gflops=device.flop_rate(work.precision) / 1e9,
    )


def _weighted_mean(
    pairs: Sequence[tuple[float, float]], default: float
) -> float:
    """Mean of ``(value, weight)`` pairs; simple mean when weights vanish."""
    total = sum(w for _, w in pairs)
    if total > 0:
        return sum(v * w for v, w in pairs) / total
    if pairs:
        return sum(v for v, _ in pairs) / len(pairs)
    return default


def aggregate(sets: Iterable[CounterSet], name: str = "total") -> CounterSet:
    """Roll launches up into one :class:`CounterSet`.

    Totals (time, bytes, flops, warps, launches, DP counts) sum;
    occupancy and warp-execution efficiency are time-weighted means (a
    long launch's utilisation matters more than a blip's); coalescing and
    texture hit rate are DRAM-traffic-weighted (they describe bytes, not
    seconds).  Works across a sequence, a stream timeline, the per-device
    halves of a multi-GPU run, or a k-wide SpMM batch alike.
    """
    items = list(sets)
    if not items:
        raise ValueError("cannot aggregate an empty counter list")
    devices = []
    for cs in items:
        if cs.device not in devices:
            devices.append(cs.device)
    rated = [cs for cs in items if cs.tex_hit_rate is not None]
    return CounterSet(
        name=name,
        device="+".join(devices),
        n_launches=sum(cs.n_launches for cs in items),
        k=max(cs.k for cs in items),
        time_s=sum(cs.time_s for cs in items),
        launch_overhead_s=sum(cs.launch_overhead_s for cs in items),
        compute_s=sum(cs.compute_s for cs in items),
        memory_s=sum(cs.memory_s for cs in items),
        critical_path_s=sum(cs.critical_path_s for cs in items),
        dram_bytes=sum(cs.dram_bytes for cs in items),
        flops=sum(cs.flops for cs in items),
        n_warps=sum(cs.n_warps for cs in items),
        achieved_occupancy=min(
            1.0,
            _weighted_mean(
                [(cs.achieved_occupancy, cs.time_s) for cs in items], 0.0
            ),
        ),
        warp_execution_efficiency=min(
            1.0,
            _weighted_mean(
                [(cs.warp_execution_efficiency, cs.time_s) for cs in items],
                1.0,
            ),
        ),
        gld_coalescing_ratio=min(
            1.0,
            _weighted_mean(
                [(cs.gld_coalescing_ratio, cs.dram_bytes) for cs in items],
                1.0,
            ),
        ),
        tex_hit_rate=(
            min(
                1.0,
                _weighted_mean(
                    [(cs.tex_hit_rate, cs.dram_bytes) for cs in rated], 0.0
                ),
            )
            if rated
            else None
        ),
        dp_children=sum(cs.dp_children for cs in items),
        dp_overflow=sum(cs.dp_overflow for cs in items),
        peak_dram_gbps=_weighted_mean(
            [(cs.peak_dram_gbps, cs.time_s) for cs in items],
            items[0].peak_dram_gbps,
        ),
        peak_gflops=_weighted_mean(
            [(cs.peak_gflops, cs.time_s) for cs in items],
            items[0].peak_gflops,
        ),
    )


def with_totals(
    cs: CounterSet,
    *,
    time_s: float | None = None,
    launch_overhead_s: float | None = None,
    n_launches: int | None = None,
    name: str | None = None,
) -> CounterSet:
    """A copy of ``cs`` with selected totals overridden.

    Used by timing models whose total is *not* a plain sum of launches
    (ACSR's pool + overlapped enqueue, the stream engine's concurrent
    timeline) so the aggregate's ``time_s`` matches the model's verdict.
    """
    changes: dict = {}
    if time_s is not None:
        changes["time_s"] = time_s
    if launch_overhead_s is not None:
        changes["launch_overhead_s"] = launch_overhead_s
    if n_launches is not None:
        changes["n_launches"] = n_launches
    if name is not None:
        changes["name"] = name
    return replace(cs, **changes) if changes else cs
