"""Timeline reconstruction: per-SM / per-stream Gantt views of a model.

The timing models already *know* where every nanosecond goes — the
simulator computes per-SM loads and per-warp chains and then keeps only
their maxima; the stream engine walks true start times and keeps only
the records.  This module rebuilds the full picture, read-only:

* a :class:`Timeline` of :class:`Lane`\\s (streams, the ACSR pool, the DP
  enqueue window, one lane per device on a multi-GPU board), each a list
  of placed :class:`LaneEvent`\\s;
* per-launch :class:`LaunchDetail` — the per-SM busy/idle split under
  round-robin placement, the tail-warp set and its skew statistics, and
  the DP child fan-out against the pending-launch cap.

**Exactness invariant.**  Every builder reconstructs the source model's
total by replaying the *same float operations in the same order* the
model used (a running cursor for sequences, the engine's ``t += dt``
segment walk, the literal timing expressions for ACSR and multi-GPU), so
``Timeline.time_s`` equals the model's ``time_s`` bit-for-bit — the
reconstructed critical path *is* the modelled time, not an estimate.
Re-simulation happens under
:func:`~repro.gpu.simulator.observers_suspended`, so building a timeline
never pollutes a live profiler and never changes a modelled time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.dynamic_parallelism import child_launch_split
from ..gpu.kernel import KernelWork
from ..gpu.simulator import (
    KernelTiming,
    observers_suspended,
    simulate_kernel,
    sm_inst_loads,
    warp_chain_detail,
)
from .imbalance import tail_warp_count, tail_warp_share, warp_work_gini


@dataclass(frozen=True)
class LaneEvent:
    """One placed span on a timeline lane."""

    name: str
    start_s: float
    duration_s: float
    #: ``kernel`` | ``overhead`` | ``copy`` | ``sync``.
    category: str = "kernel"

    @property
    def end_s(self) -> float:
        """Where the span finishes on the timeline."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class Lane:
    """A horizontal row of the Gantt (a stream, a device, a window)."""

    label: str
    events: tuple[LaneEvent, ...]

    @property
    def end_s(self) -> float:
        """When the lane's last event finishes (0.0 when empty)."""
        return max((e.end_s for e in self.events), default=0.0)


@dataclass(frozen=True)
class LaunchDetail:
    """Per-launch lane detail the simulator computed but discarded.

    ``sm_busy_s`` is the compute time each SM spends on its dealt warps
    (round-robin placement, exactly the vector behind the busiest-SM
    bound); ``idle_s`` is each SM's gap to the busiest one — the white
    space of the per-SM Gantt.  Tail-warp statistics describe the skew
    that fills the ``tail_warp`` attribution term, and the DP fan-out
    splits child grids against the device's pending-launch cap.
    """

    name: str
    start_s: float
    duration_s: float
    sm_busy_s: tuple[float, ...]
    busiest_sm: int
    idle_s: tuple[float, ...]
    n_warps: int
    tail_warps: int
    tail_share: float
    gini: float
    #: Straggler warp's dependent chain (the latency bound), seconds.
    chain_max_s: float
    #: Mean warp's dependent chain, seconds.
    chain_mean_s: float
    dp_within: int = 0
    dp_overflow: int = 0

    @property
    def mean_idle_s(self) -> float:
        """Average per-SM idle gap below the busiest SM."""
        if not self.idle_s:
            return 0.0
        return float(sum(self.idle_s)) / len(self.idle_s)

    def render(self, width: int = 40) -> str:
        """Per-SM busy bars for one launch (busiest SM marked ``*``)."""
        lines = [
            f"{self.name}: {self.n_warps} warps, "
            f"tail {self.tail_warps} warps / {self.tail_share:.1%} of work, "
            f"gini {self.gini:.3f}"
        ]
        if self.dp_within or self.dp_overflow:
            lines.append(
                f"  dp fan-out: {self.dp_within} within cap, "
                f"{self.dp_overflow} overflow"
            )
        peak = max(self.sm_busy_s, default=0.0)
        for s, busy in enumerate(self.sm_busy_s):
            frac = busy / peak if peak > 0 else 0.0
            bar = "#" * max(1 if busy > 0 else 0, int(round(width * frac)))
            mark = "*" if s == self.busiest_sm else " "
            lines.append(
                f"  SM{s:>3}{mark} {busy * 1e6:>9.3f} us |{bar:<{width}}|"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Timeline:
    """A reconstructed execution timeline of one timing model."""

    name: str
    device_name: str
    #: ``sequence`` | ``acsr`` | ``engine`` | ``multi-gpu``.
    source: str
    #: The reconstructed critical path — bit-identical to the source
    #: model's ``time_s`` (the builders replay its float operations).
    time_s: float
    lanes: tuple[Lane, ...]
    details: tuple[LaunchDetail, ...] = ()
    #: Index into ``lanes`` of the lane the total time waits on
    #: (multi-GPU: the critical device; others: the busiest lane).
    critical_lane: int = 0
    notes: str = field(default="", compare=False)

    def detail_for(self, name: str) -> LaunchDetail | None:
        """The first launch detail matching ``name`` (or ``None``)."""
        for d in self.details:
            if d.name == name:
                return d
        return None

    def gantt(self, width: int = 64) -> str:
        """A one-screen text Gantt of the lanes."""
        span = max(self.time_s, max((ln.end_s for ln in self.lanes), default=0.0))
        lines = [
            f"timeline: {self.name} on {self.device_name} "
            f"({self.source}) — {self.time_s * 1e6:.3f} us"
        ]
        glyph = {"kernel": "#", "overhead": "o", "copy": "=", "sync": "~"}
        for i, lane in enumerate(self.lanes):
            row = [" "] * width
            for ev in lane.events:
                if span <= 0:
                    continue
                a = int(ev.start_s / span * (width - 1))
                b = max(a + 1, int(round(ev.end_s / span * (width - 1))) + 1)
                ch = glyph.get(ev.category, "#")
                for p in range(a, min(b, width)):
                    row[p] = ch
            mark = "*" if i == self.critical_lane else " "
            lines.append(f"  {lane.label:<14}{mark}|{''.join(row)}|")
        legend = "  (#=kernel o=launch ==copy ~=sync/enqueue, *=critical lane)"
        lines.append(legend)
        if self.notes:
            lines.append(f"  {self.notes}")
        return "\n".join(lines)


def launch_detail(
    device: DeviceSpec,
    work: KernelWork,
    timing: KernelTiming,
    *,
    start_s: float = 0.0,
    dp_children: int = 0,
) -> LaunchDetail:
    """Reconstruct the per-SM / tail-warp detail of one launch."""
    chain_cycles, counts, insts = warp_chain_detail(device, work)
    clock_hz = device.clock_ghz * 1e9
    if insts.size == 0:
        busy: tuple[float, ...] = ()
        idle: tuple[float, ...] = ()
        busiest = 0
        chain_max = 0.0
        chain_mean = 0.0
    else:
        loads = sm_inst_loads(insts, counts, device.num_sms)
        busy_arr = loads / device.warp_issue_rate / clock_hz
        busiest = int(np.argmax(busy_arr))
        idle_arr = busy_arr[busiest] - busy_arr
        busy = tuple(float(v) for v in busy_arr)
        idle = tuple(float(v) for v in idle_arr)
        chain_max = float(chain_cycles.max()) / clock_hz
        total_w = float(counts.sum())
        chain_mean = (
            float(np.sum(chain_cycles * counts)) / total_w / clock_hz
            if total_w > 0
            else 0.0
        )
    within, overflow = (
        child_launch_split(device, dp_children) if dp_children else (0, 0)
    )
    return LaunchDetail(
        name=timing.name,
        start_s=start_s,
        duration_s=timing.time_s,
        sm_busy_s=busy,
        busiest_sm=busiest,
        idle_s=idle,
        n_warps=work.n_warps,
        tail_warps=tail_warp_count(work),
        tail_share=tail_warp_share(work),
        gini=warp_work_gini(work),
        chain_max_s=chain_max,
        chain_mean_s=chain_mean,
        dp_within=within,
        dp_overflow=overflow,
    )


def timeline_from_sequence(
    device: DeviceSpec,
    works: list[KernelWork],
    *,
    name: str = "sequence",
    include_launch_overhead: bool = True,
) -> Timeline:
    """Rebuild a back-to-back launch sequence as a single-lane timeline.

    The cursor accumulates ``timing.time_s`` launch by launch — the same
    left-to-right float sum ``SequenceTiming.time_s`` performs — so the
    reconstructed total equals the sequence model's time exactly.
    """
    events: list[LaneEvent] = []
    details: list[LaunchDetail] = []
    cursor = 0.0
    with observers_suspended():
        for w in works:
            timing = simulate_kernel(
                device, w, include_launch_overhead=include_launch_overhead
            )
            events.append(
                LaneEvent(
                    name=timing.name,
                    start_s=cursor,
                    duration_s=timing.time_s,
                    category="kernel",
                )
            )
            details.append(
                launch_detail(device, w, timing, start_s=cursor)
            )
            cursor += timing.time_s
    return Timeline(
        name=name,
        device_name=device.name,
        source="sequence",
        time_s=cursor,
        lanes=(Lane(label="stream 0", events=tuple(events)),),
        details=tuple(details),
    )


def timeline_from_acsr(fmt, device: DeviceSpec, *, k: int = 1) -> Timeline:
    """Rebuild the serial ACSR model: launch bill, pool, enqueue window.

    The total replays ``ACSRTiming.time_s``'s own expression
    (``launch_s + max(pool, enqueue)``) on the frozen timing's floats.
    """
    from ..core.dispatch import pooled_kernel_work, time_spmv

    plan = fmt.plan_for(device)
    with observers_suspended():
        acsr = time_spmv(fmt.csr, plan, device, k=k)
        pooled = pooled_kernel_work(fmt.csr, plan, device, k=k)
    lanes = [
        Lane(
            label="host",
            events=(
                LaneEvent(
                    name="launch-bill",
                    start_s=0.0,
                    duration_s=acsr.launch_s,
                    category="overhead",
                ),
            ),
        ),
        Lane(
            label="pool",
            events=(
                LaneEvent(
                    name=acsr.pool.name,
                    start_s=acsr.launch_s,
                    duration_s=acsr.pool.time_s,
                    category="kernel",
                ),
            ),
        ),
    ]
    critical = 1
    if acsr.n_row_grids:
        lanes.append(
            Lane(
                label="dp-enqueue",
                events=(
                    LaneEvent(
                        name="child-enqueue",
                        start_s=acsr.launch_s,
                        duration_s=acsr.enqueue_s,
                        category="sync",
                    ),
                ),
            )
        )
        if acsr.enqueue_s > acsr.pool.time_s:
            critical = 2
    detail = launch_detail(
        device,
        pooled,
        acsr.pool,
        start_s=acsr.launch_s,
        dp_children=acsr.n_row_grids,
    )
    notes = (
        f"{acsr.n_bin_grids} bin grids + {acsr.n_row_grids} DP children"
        + (f", {acsr.dp_overflow} past the launch cap" if acsr.dp_overflow else "")
    )
    return Timeline(
        name=fmt.name + (f"[k={k}]" if k > 1 else ""),
        device_name=device.name,
        source="acsr",
        time_s=acsr.launch_s + max(acsr.pool.time_s, acsr.enqueue_s),
        lanes=tuple(lanes),
        details=(detail,),
        critical_lane=critical,
        notes=notes,
    )


def timeline_from_engine(result, *, name: str = "engine") -> Timeline:
    """Rebuild a stream-engine run, one lane per stream.

    The total replays the event loop's ``t += dt`` walk over the run's
    recorded :class:`~repro.gpu.streams.TimeSegment`\\s, re-accumulating
    ``duration_s`` bit-for-bit.
    """
    category = {"kernel": "kernel", "copy": "copy", "span": "sync"}
    by_stream: dict[int, list[LaneEvent]] = {}
    details: list[LaunchDetail] = []
    for r in result.records:
        by_stream.setdefault(r.stream, []).append(
            LaneEvent(
                name=r.name,
                start_s=r.start_s,
                duration_s=r.duration_s,
                category=category.get(r.kind, "kernel"),
            )
        )
        if r.kind == "kernel" and r.work is not None and result.devices:
            details.append(
                launch_detail(
                    result.devices[r.device],
                    r.work,
                    r.timing,
                    start_s=r.start_s,
                    dp_children=r.dp_children,
                )
            )
    lanes = tuple(
        Lane(label=f"stream {s}", events=tuple(evs))
        for s, evs in sorted(by_stream.items())
    )
    t = 0.0
    for seg in result.segments:
        t += seg.dt_s
    if not result.segments:
        t = result.duration_s
    critical = 0
    if lanes:
        critical = max(range(len(lanes)), key=lambda i: lanes[i].end_s)
    device_name = "+".join(
        dict.fromkeys(d.name for d in result.devices)
    ) or "GPU"
    return Timeline(
        name=name,
        device_name=device_name,
        source="engine",
        time_s=t,
        lanes=lanes,
        details=tuple(details),
        critical_lane=critical,
    )


def timeline_from_multigpu(mg, *, name: str = "multi-gpu") -> Timeline:
    """Rebuild a multi-GPU run, one lane per device plus the barrier.

    The total replays ``MultiGPUTiming.time_s``'s expression — the max of
    the per-device sequence sums plus the sync overhead — on the same
    frozen floats, so it matches the board-level verdict exactly.  Idle
    devices' gap to the critical device is the imperfect-scaling slack.
    """
    if mg.result is None:
        raise ValueError("this MultiGPUTiming was built without an engine result")
    cd = mg.critical_device
    lanes = []
    details: list[LaunchDetail] = []
    for d in range(mg.n_devices):
        events = []
        for r in mg.result.records:
            if r.device != d or r.kind == "span":
                continue
            events.append(
                LaneEvent(
                    name=r.name,
                    start_s=r.start_s,
                    duration_s=r.duration_s,
                    category="kernel" if r.kind == "kernel" else "copy",
                )
            )
            if r.kind == "kernel" and r.work is not None:
                details.append(
                    launch_detail(
                        mg.result.devices[r.device],
                        r.work,
                        r.timing,
                        start_s=r.start_s,
                        dp_children=r.dp_children,
                    )
                )
        lanes.append(Lane(label=f"dev{d}", events=tuple(events)))
    if mg.n_devices > 1:
        start = max(t.time_s for t in mg.per_device)
        lanes.append(
            Lane(
                label="barrier",
                events=(
                    LaneEvent(
                        name="device-sync",
                        start_s=start,
                        duration_s=mg.sync_overhead_s,
                        category="sync",
                    ),
                ),
            )
        )
    if not mg.per_device:
        total = 0.0
    else:
        total = max(t.time_s for t in mg.per_device) + mg.sync_overhead_s
    device_name = "+".join(
        dict.fromkeys(d.name for d in mg.result.devices)
    )
    return Timeline(
        name=name,
        device_name=device_name,
        source="multi-gpu",
        time_s=total,
        lanes=tuple(lanes),
        details=tuple(details),
        critical_lane=cd,
        notes=f"critical device: dev{cd}",
    )


def timeline_from_format(fmt, device: DeviceSpec, *, k: int = 1) -> Timeline:
    """Rebuild one SpMV/SpMM of any registered format.

    ACSR goes through its pooled model; every other format through its
    launch sequence.  ``Timeline.time_s`` equals the format's own
    ``spmm_time_s(device, k)`` bit-for-bit.
    """
    from ..core.acsr import ACSRFormat  # local: core imports formats

    if isinstance(fmt, ACSRFormat):
        return timeline_from_acsr(fmt, device, k=k)
    works = fmt.cached_kernel_works(device, k=k)
    return timeline_from_sequence(
        device, works, name=fmt.name + (f"[k={k}]" if k > 1 else "")
    )
