"""Critical-path attribution: decompose modelled time into named causes.

Every launch the roofline simulator times is ``max(compute, memory,
latency) + overhead`` — a verdict, not an explanation.  This module turns
the verdict into a waterfall of *named contributions* that sum **exactly**
(bit-for-bit, in IEEE double) to the modelled time:

``ideal``
    What the launch would cost with perfectly balanced warps, perfectly
    coalesced traffic, and saturated bandwidth — the roofline floor.
``coalescing``
    Extra time from DRAM bytes moved but never asked for (sector waste,
    ELL padding), excluding texture misses.
``tex_miss``
    Extra time from texture-cache miss re-fetches on the ``x[col]``
    gather stream (kernels that declare ``tex_miss_bytes``).
``bw_occupancy``
    Extra time because too few resident warps kept DRAM from saturating
    (the ``bandwidth_efficiency`` degradation).
``tail_warp``
    Extra time because warp work is skewed: the busiest SM over the
    balanced-SM ideal, plus the straggler warp's dependent chain over the
    *mean* warp's chain.  This is the cost ACSR's binning removes.
``latency``
    Dependent-chain cost every warp pays even at perfect balance (the
    mean warp's exposed-latency chain when it exceeds the throughput
    bounds).
``launch_overhead`` / ``dp_serialization`` / ``pcie`` / ``sync``
    Host launch bill, device-side child-enqueue time beyond the pool,
    PCIe transfer time, and cross-stream/device synchronisation.

The decomposition is a telescoping walk over roofline breakpoints, so
every term is non-negative by construction; a final fix-point nudge on
the ``ideal`` term forces the left-to-right float sum to equal the
model's ``time_s`` exactly — the invariant the tests enforce on every
device.  Attribution only *reads* frozen timings (re-simulation happens
under :func:`~repro.gpu.simulator.observers_suspended`), so enabling it
can never change a modelled time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..gpu.device import INDEX_BYTES, DeviceSpec
from ..gpu.kernel import KernelWork
from ..gpu.simulator import (
    KernelTiming,
    observers_suspended,
    simulate_kernel,
    warp_chain_detail,
)

#: Canonical term order — also the summation order of the exactness
#: invariant ``fl(Σ terms) == time_s``.  Append-only for compatibility.
TERM_ORDER = (
    "ideal",
    "coalescing",
    "tex_miss",
    "bw_occupancy",
    "tail_warp",
    "latency",
    "launch_overhead",
    "dp_serialization",
    "pcie",
    "sync",
)


def _zero_terms() -> dict[str, float]:
    """A fresh all-zero term dict in canonical order."""
    return {name: 0.0 for name in TERM_ORDER}


def _force_exact(
    terms: dict[str, float],
    target: float,
    adjust: str = "ideal",
    order: tuple[str, ...] | None = None,
) -> dict[str, float]:
    """Nudge ``terms[adjust]`` until the ``order``-order float sum equals
    ``target`` bit-for-bit (``order`` defaults to :data:`TERM_ORDER`).

    The additive fix-point converges in one or two steps in practice; a
    bisection fallback handles the corners where the fix-point
    oscillates (the correction is smaller than the adjusted term's ulp,
    or the sum jumps two ulps per step of the term).
    """
    names = TERM_ORDER if order is None else tuple(order)

    def total() -> float:
        s = 0.0
        for name in names:
            s += terms[name]
        return s

    def nudge(name: str) -> bool:
        for _ in range(100):
            s = total()
            if s == target:
                return True
            terms[name] += target - s
        # The fix-point oscillates; the sum is monotone non-decreasing
        # in any single term, so bisect the term value onto the target.
        orig = terms[name]

        def sum_at(x: float) -> float:
            terms[name] = x
            return total()

        s0 = sum_at(orig)
        if s0 == target:
            return True
        up = s0 < target
        step = max(abs(target - s0), math.ulp(orig), math.ulp(target))
        lo = hi = orig
        for _ in range(200):  # widen until the target is straddled
            if up:
                hi = orig + step
                if sum_at(hi) >= target:
                    break
            else:
                lo = orig - step
                if sum_at(lo) <= target:
                    break
            step *= 2.0
        else:
            terms[name] = orig
            return False
        while True:
            mid = lo + (hi - lo) / 2.0
            if mid == lo or mid == hi:
                break
            if sum_at(mid) < target:
                lo = mid
            else:
                hi = mid
        for x in (lo, hi):
            if sum_at(x) == target:
                return True
        # The crossing skipped the target at this summation position.
        terms[name] = orig
        return False

    if nudge(adjust):
        return terms
    # The sum can straddle ``target`` without landing on it for one
    # particular adjusted position (a 2-ulp rounding jump); a term at a
    # different position in the sum rounds differently, so retry.
    for name in sorted(names, key=lambda n: -abs(terms[n])):
        if name != adjust and nudge(name):
            return terms
    return terms


def force_exact_sum(
    terms: dict[str, float],
    target: float,
    *,
    adjust: str = "ideal",
    order: tuple[str, ...] | None = None,
) -> dict[str, float]:
    """Public wrapper around the exactness fix-point used by attribution.

    Returns ``terms`` (mutated in place) nudged on ``terms[adjust]`` so
    that summing the values in ``order`` left to right equals ``target``
    bit-for-bit.  ``order`` defaults to :data:`TERM_ORDER`; callers with
    extra leading terms (the trace explain table prepends ``queue_wait``
    and ``formation``) pass their own order.
    """
    return _force_exact(terms, target, adjust=adjust, order=order)


@dataclass(frozen=True)
class Attribution:
    """A named decomposition of one modelled time.

    ``terms`` carries every :data:`TERM_ORDER` name exactly once, in
    order; summing the values left to right reproduces ``time_s``
    bit-for-bit (the exactness invariant).
    """

    name: str
    device: str
    time_s: float
    terms: tuple[tuple[str, float], ...]

    def term(self, name: str) -> float:
        """The seconds attributed to ``name`` (0.0 for absent causes)."""
        for key, value in self.terms:
            if key == name:
                return value
        raise KeyError(name)

    def as_dict(self) -> dict[str, float]:
        """The terms as an ordered dict (canonical order preserved)."""
        return dict(self.terms)

    def nonzero(self) -> tuple[tuple[str, float], ...]:
        """Only the terms that carry time (ideal always included)."""
        return tuple(
            (k, v) for k, v in self.terms if v != 0.0 or k == "ideal"
        )

    def check_exact(self) -> bool:
        """Whether the canonical-order float sum equals ``time_s``."""
        s = 0.0
        for _, v in self.terms:
            s += v
        return s == self.time_s

    def render(self) -> str:
        """A one-screen waterfall table (microseconds and shares)."""
        lines = [
            f"attribution: {self.name} @ {self.device} — "
            f"{self.time_s * 1e6:.3f} us"
        ]
        for key, value in self.nonzero():
            share = value / self.time_s if self.time_s > 0 else 0.0
            bar = "#" * max(0, int(round(32 * max(0.0, share))))
            lines.append(
                f"  {key:<16} {value * 1e6:>10.3f} us {share:>7.1%} {bar}"
            )
        return "\n".join(lines)


def _from_terms(
    name: str, device_name: str, terms: dict[str, float], target: float
) -> Attribution:
    """Freeze a term dict into an exactness-forced :class:`Attribution`."""
    forced = _force_exact(terms, target)
    return Attribution(
        name=name,
        device=device_name,
        time_s=target,
        terms=tuple((k, forced[k]) for k in TERM_ORDER),
    )


def _useful_bytes(work: KernelWork, dram_bytes: float) -> float:
    """Ideal payload bytes, mirroring the counter layer's convention.

    Hints win; otherwise the SpMV-shaped ``flops/(2k)`` estimate; a launch
    with traffic but no derivable payload counts as all-useful (nothing
    to attribute waste against), exactly like
    ``CounterSet.gld_coalescing_ratio``.
    """
    if work.hints is not None and work.hints.useful_bytes is not None:
        return min(work.hints.useful_bytes, dram_bytes)
    elements = work.flops / (2.0 * max(1, work.k))
    useful = elements * (work.precision.value_bytes + INDEX_BYTES)
    if useful <= 0:
        return dram_bytes
    return min(useful, dram_bytes)


def attribute_launch(
    device: DeviceSpec, work: KernelWork, timing: KernelTiming
) -> Attribution:
    """Decompose one launch's modelled time into named contributions.

    ``work`` and ``timing`` must be the pair one ``simulate_kernel`` call
    consumed and produced (same contract as
    :func:`~repro.obs.counters.launch_counters`).  The walk visits
    roofline breakpoints from the ideal floor to the full model — each
    difference of maxima is non-negative — and the terms float-sum to
    ``timing.time_s`` exactly.
    """
    terms = _zero_terms()
    terms["launch_overhead"] = timing.launch_overhead_s
    if timing.n_warps == 0 or work.total_insts == 0:
        return _from_terms(timing.name, device.name, terms, timing.time_s)

    clock_hz = device.clock_ghz * 1e9
    c1 = timing.compute_s
    m3 = timing.memory_s
    l_max = timing.critical_path_s

    chain_cycles, counts, insts = warp_chain_detail(device, work)
    total_w = float(counts.sum())
    # Balanced compute: every SM dealt an equal share of the (DP-inflated)
    # instruction stream.
    c0 = (
        float(np.sum(insts * counts))
        / device.num_sms
        / device.warp_issue_rate
        / clock_hz
    )
    c0 = min(c0, c1)
    # Mean warp's dependent chain — the latency floor a perfectly
    # balanced launch still pays.
    l_mean = (
        float(np.sum(chain_cycles * counts)) / total_w / clock_hz
        if total_w > 0
        else 0.0
    )
    l_mean = min(l_mean, l_max)

    dram = timing.dram_bytes
    peak_raw = device.dram_bandwidth_gbps * 1e9
    useful = _useful_bytes(work, dram)
    waste = max(0.0, dram - useful)
    tex_declared = (
        work.hints.tex_miss_bytes
        if work.hints is not None and work.hints.tex_miss_bytes is not None
        else 0.0
    )
    tex_excess = min(waste, tex_declared)
    coal_waste = waste - tex_excess
    m0 = useful / peak_raw
    m1 = (useful + coal_waste) / peak_raw
    m2 = dram / peak_raw
    # Monotone chain m0 <= m1 <= m2 <= m3; m3 stays the model's own float.
    m2 = min(m2, m3)
    m1 = min(m1, m2)
    m0 = min(m0, m1)

    t0 = max(c0, m0)
    t1 = max(c0, m1)
    t2 = max(c0, m2)
    t3 = max(c0, m3)
    t4 = max(c1, m3)
    t5a = max(c1, m3, l_mean)
    t5b = max(c1, m3, l_max)

    terms["ideal"] = t0
    terms["coalescing"] = t1 - t0
    terms["tex_miss"] = t2 - t1
    terms["bw_occupancy"] = t3 - t2
    # Skew shows up twice: the busiest SM outruns the balanced-SM ideal,
    # and the straggler warp's chain outruns the mean warp's chain.
    terms["tail_warp"] = (t4 - t3) + (t5b - t5a)
    terms["latency"] = t5a - t4
    return _from_terms(timing.name, device.name, terms, timing.time_s)


def merge_attributions(
    parts: list[Attribution],
    *,
    name: str,
    device: str,
    time_s: float,
    extra: dict[str, float] | None = None,
) -> Attribution:
    """Term-wise sum of ``parts`` (plus ``extra`` contributions), forced
    exact against an externally supplied total ``time_s``.

    Used wherever a model's total is not the plain float-sum of its
    launches (ACSR's overlapped enqueue, the engine's concurrent
    timeline, multi-GPU's barrier max).
    """
    terms = _zero_terms()
    for key in TERM_ORDER:
        s = 0.0
        for part in parts:
            s += part.term(key)
        terms[key] = s
    if extra:
        for key, value in extra.items():
            terms[key] += value
    return _from_terms(name, device, terms, time_s)


def attribute_sequence(
    device: DeviceSpec,
    works: list[KernelWork],
    *,
    name: str = "sequence",
    include_launch_overhead: bool = True,
) -> Attribution:
    """Attribute a back-to-back launch sequence.

    The target total is the same left-to-right float sum
    ``SequenceTiming.time_s`` computes, so the result agrees with
    ``fmt.spmv_time_s`` / ``spmm_time_s`` bit-for-bit.
    """
    with observers_suspended():
        pairs = [
            (
                w,
                simulate_kernel(
                    device, w, include_launch_overhead=include_launch_overhead
                ),
            )
            for w in works
        ]
    parts = [attribute_launch(device, w, t) for w, t in pairs]
    target = sum(t.time_s for _, t in pairs)
    return merge_attributions(
        parts, name=name, device=device.name, time_s=target
    )


def _attribute_acsr(fmt, device: DeviceSpec, *, k: int) -> Attribution:
    """ACSR path: pool waterfall + launch bill + DP serialisation."""
    from ..core.dispatch import pooled_kernel_work, time_spmv

    plan = fmt.plan_for(device)
    with observers_suspended():
        acsr = time_spmv(fmt.csr, plan, device, k=k)
        pooled = pooled_kernel_work(fmt.csr, plan, device, k=k)
    base = attribute_launch(device, pooled, acsr.pool)
    dp_serial = max(acsr.pool.time_s, acsr.enqueue_s) - acsr.pool.time_s
    return merge_attributions(
        [base],
        name=f"{fmt.name}" + (f"[k={k}]" if k > 1 else ""),
        device=device.name,
        time_s=acsr.time_s,
        extra={
            "launch_overhead": acsr.launch_s,
            "dp_serialization": dp_serial,
        },
    )


def attribute_format(
    fmt, device: DeviceSpec, *, k: int = 1
) -> Attribution:
    """Attribute one SpMV (``k=1``) or ``k``-wide SpMM of a format.

    Generic formats walk their launch sequence; ACSR goes through its
    DP-aware pooled model.  Either way the attribution's ``time_s`` is
    the format's own modelled time, bit-for-bit.
    """
    from ..core.acsr import ACSRFormat  # local: core imports formats

    if isinstance(fmt, ACSRFormat):
        return _attribute_acsr(fmt, device, k=k)
    works = fmt.cached_kernel_works(device, k=k)
    return attribute_sequence(
        device,
        works,
        name=f"{fmt.name}" + (f"[k={k}]" if k > 1 else ""),
    )


def attribute_engine(result, *, name: str = "engine") -> Attribution:
    """Attribute a stream-engine run segment by segment.

    Every piecewise-constant interval of the event loop is charged to its
    critical op: copy intervals become ``pcie``, span intervals ``sync``,
    and kernel intervals split across the kernel's own waterfall in
    proportion to its standalone attribution.  The target total is the
    engine's ``duration_s``.
    """
    if not result.devices:
        raise ValueError("EngineResult has no device registry")
    fractions: dict[int, tuple[tuple[str, float], ...]] = {}
    terms = _zero_terms()
    for seg in result.segments:
        if seg.category == "copy":
            terms["pcie"] += seg.dt_s
            continue
        if seg.category == "span":
            terms["sync"] += seg.dt_s
            continue
        rec = result.record_by_op_id(seg.op_id)
        if rec is None or rec.work is None or rec.timing is None:
            terms["sync"] += seg.dt_s
            continue
        fracs = fractions.get(seg.op_id)
        if fracs is None:
            att = attribute_launch(
                result.devices[rec.device], rec.work, rec.timing
            )
            if att.time_s > 0:
                fracs = tuple(
                    (key, value / att.time_s) for key, value in att.terms
                )
            else:
                fracs = (("ideal", 1.0),)
            fractions[seg.op_id] = fracs
        for key, frac in fracs:
            terms[key] += seg.dt_s * frac
    device = "+".join(
        dict.fromkeys(d.name for d in result.devices)
    )
    return _from_terms(name, device, terms, result.duration_s)


def attribute_multigpu(mg, *, name: str = "multi-gpu") -> Attribution:
    """Attribute a multi-GPU run along its critical path.

    The board's time is the slowest device's sequence plus the barrier
    (``MultiGPUTiming.time_s``), so the waterfall walks the critical
    device's launches and adds the sync overhead; the other devices'
    work hides under the max and contributes nothing — which is exactly
    the imperfect-scaling story of Section VIII.
    """
    if mg.result is None:
        raise ValueError("this MultiGPUTiming was built without an engine result")
    cd = mg.critical_device
    device = mg.result.devices[cd]
    parts = [
        attribute_launch(device, r.work, r.timing)
        for r in mg.result.kernel_records(cd)
        if r.work is not None and r.timing is not None
    ]
    return merge_attributions(
        parts,
        name=name,
        device=device.name,
        time_s=mg.time_s,
        extra={"sync": mg.sync_overhead_s},
    )
