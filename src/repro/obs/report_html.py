"""Self-contained HTML reports for differential profiles.

One ``repro diff --html`` artifact = one file: embedded SVG Gantt charts
of both sides' reconstructed timelines, an SVG waterfall of the ranked
attribution deltas, and the paired-launch counter table.  No external
scripts, stylesheets, fonts, or network fetches — the file renders
identically from a CI artifact store, an email attachment, or ``file://``.
"""

from __future__ import annotations

import html
from pathlib import Path

from .diff import DiffReport
from .timeline import Timeline

_CATEGORY_FILL = {
    "kernel": "#4c78a8",
    "overhead": "#f58518",
    "copy": "#54a24b",
    "sync": "#b279a2",
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #222; max-width: 960px; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; font-size: 0.85em; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
.pos { color: #1a7f37; } .neg { color: #b42318; }
.verdict { background: #f2f6fc; padding: 0.6em 1em; border-radius: 6px; }
svg { background: #fafafa; border: 1px solid #ddd; margin: 0.4em 0; }
.legend span { display: inline-block; margin-right: 1.2em;
               font-size: 0.8em; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; }
.grid { border-collapse: collapse; }
.grid td, .grid th { border: none; padding: 2px 10px 2px 0; }
.spark { background: #fcfcfc; border: 1px solid #e5e5e5; }
.mono { font-family: ui-monospace, monospace; font-size: 0.85em; }
.firing { color: #b42318; font-weight: 600; }
.resolved { color: #1a7f37; }
pre.waterfall { font-size: 0.8em; background: #f7f7f7; padding: 0.6em;
                border: 1px solid #e5e5e5; overflow-x: auto; }
"""


def _svg_gantt(timeline: Timeline, width: int = 860) -> str:
    """An inline SVG Gantt of one reconstructed timeline."""
    lane_h, pad_l, pad_t = 26, 110, 24
    span = max(
        timeline.time_s,
        max((ln.end_s for ln in timeline.lanes), default=0.0),
        1e-12,
    )
    height = pad_t + lane_h * max(1, len(timeline.lanes)) + 20
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg">',
        f'<text x="4" y="14" font-size="12" fill="#444">'
        f"{html.escape(timeline.name)} — "
        f"{timeline.time_s * 1e6:.3f} us ({timeline.source})</text>",
    ]
    plot_w = width - pad_l - 10
    for i, lane in enumerate(timeline.lanes):
        y = pad_t + i * lane_h
        mark = " *" if i == timeline.critical_lane else ""
        parts.append(
            f'<text x="4" y="{y + 15}" font-size="11" fill="#333">'
            f"{html.escape(lane.label)}{mark}</text>"
        )
        parts.append(
            f'<line x1="{pad_l}" y1="{y + lane_h - 3}" '
            f'x2="{pad_l + plot_w}" y2="{y + lane_h - 3}" '
            f'stroke="#eee"/>'
        )
        for ev in lane.events:
            x = pad_l + ev.start_s / span * plot_w
            w = max(1.5, ev.duration_s / span * plot_w)
            fill = _CATEGORY_FILL.get(ev.category, "#4c78a8")
            title = (
                f"{ev.name}: {ev.start_s * 1e6:.3f} us "
                f"+{ev.duration_s * 1e6:.3f} us"
            )
            parts.append(
                f'<rect x="{x:.2f}" y="{y + 3}" width="{w:.2f}" '
                f'height="{lane_h - 9}" fill="{fill}" opacity="0.85">'
                f"<title>{html.escape(title)}</title></rect>"
            )
    parts.append("</svg>")
    return "".join(parts)


def svg_gantt(timeline: Timeline, width: int = 860) -> str:
    """Public Gantt renderer — one inline SVG per timeline.

    Shared by the diff report and the serve dashboard's flight-recorder
    section.
    """
    return _svg_gantt(timeline, width)


def svg_sparkline(
    values,
    width: int = 240,
    height: int = 36,
    stroke: str = "#4c78a8",
    label: str = "",
) -> str:
    """A tiny inline SVG line chart of one metric series.

    ``values`` may contain ``None`` gaps (e.g. percentiles before the
    window has samples); gaps break the polyline.  Scaling is
    min-to-max of the present values with a flat-line fallback, so the
    sparkline always renders something deterministic.
    """
    vals = list(values)
    pad = 3.0
    present = [v for v in vals if v is not None]
    lo = min(present, default=0.0)
    hi = max(present, default=0.0)
    span = hi - lo
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" class="spark">'
    ]
    if label:
        parts.append(
            f'<title>{html.escape(label)}</title>'
        )
    if len(vals) >= 1 and present:
        step = (width - 2 * pad) / max(1, len(vals) - 1)

        def y_of(v: float) -> float:
            if span <= 0:
                return height / 2.0
            return pad + (hi - v) / span * (height - 2 * pad)

        runs: list[list[str]] = [[]]
        for i, v in enumerate(vals):
            if v is None:
                if runs[-1]:
                    runs.append([])
                continue
            runs[-1].append(f"{pad + i * step:.2f},{y_of(v):.2f}")
        for run in runs:
            if len(run) == 1:
                x, y = run[0].split(",")
                parts.append(
                    f'<circle cx="{x}" cy="{y}" r="1.5" fill="{stroke}"/>'
                )
            elif run:
                parts.append(
                    f'<polyline points="{" ".join(run)}" fill="none" '
                    f'stroke="{stroke}" stroke-width="1.5"/>'
                )
    parts.append("</svg>")
    return "".join(parts)


def svg_waterfall(bars, width: int = 860) -> str:
    """An inline SVG waterfall of signed ``(label, seconds)`` bars.

    Shared plumbing of the diff report's attribution waterfall and the
    serve dashboard / trace explain waterfalls: one horizontal bar per
    term around a mid axis, green right of it for positive seconds, red
    left of it for negative, each labelled in microseconds.
    """
    bars = [(k, v) for k, v in bars if v != 0.0]
    bar_h, pad_l, pad_t = 24, 130, 8
    height = pad_t + bar_h * max(1, len(bars)) + 12
    peak = max((abs(v) for _, v in bars), default=1e-12)
    mid = pad_l + (width - pad_l - 10) / 2.0
    half = (width - pad_l - 10) / 2.0
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg">',
        f'<line x1="{mid}" y1="{pad_t}" x2="{mid}" '
        f'y2="{height - 8}" stroke="#bbb"/>',
    ]
    for i, (term, delta) in enumerate(bars):
        y = pad_t + i * bar_h
        w = abs(delta) / peak * (half - 6)
        x = mid if delta > 0 else mid - w
        fill = "#1a7f37" if delta > 0 else "#b42318"
        parts.append(
            f'<text x="4" y="{y + 15}" font-size="11" '
            f'fill="#333">{html.escape(term)}</text>'
        )
        parts.append(
            f'<rect x="{x:.2f}" y="{y + 4}" width="{max(w, 1.0):.2f}" '
            f'height="{bar_h - 10}" fill="{fill}" opacity="0.8">'
            f"<title>{html.escape(term)}: {delta * 1e6:+.3f} us</title>"
            f"</rect>"
        )
        tx = mid + w + 6 if delta > 0 else mid - w - 6
        anchor = "start" if delta > 0 else "end"
        parts.append(
            f'<text x="{tx:.2f}" y="{y + 16}" font-size="10" '
            f'text-anchor="{anchor}" fill="#555">'
            f"{delta * 1e6:+.3f} us</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_waterfall(report: DiffReport, width: int = 860) -> str:
    """The diff report's waterfall — ranked attribution deltas."""
    return svg_waterfall(report.ranked(), width)


def _terms_table(report: DiffReport) -> str:
    rows = [
        "<tr><th>term</th><th>A (us)</th><th>B (us)</th>"
        "<th>delta (us)</th></tr>"
    ]
    for term, delta in report.ranked():
        ta = report.a.attribution.term(term)
        tb = report.b.attribution.term(term)
        cls = "pos" if delta > 0 else ("neg" if delta < 0 else "")
        rows.append(
            f"<tr><td>{html.escape(term)}</td>"
            f"<td>{ta * 1e6:.3f}</td><td>{tb * 1e6:.3f}</td>"
            f'<td class="{cls}">{delta * 1e6:+.3f}</td></tr>'
        )
    return "<table>" + "".join(rows) + "</table>"


def _pairs_table(report: DiffReport) -> str:
    rows = [
        "<tr><th>launch pair</th><th>A time (us)</th><th>B time (us)</th>"
        "<th>A occ</th><th>B occ</th><th>A WEff</th><th>B WEff</th>"
        "<th>A coal</th><th>B coal</th></tr>"
    ]

    def fmt(v, spec: str) -> str:
        return format(v, spec) if v is not None else "-"

    for cs_a, cs_b in report.launch_pairs():
        name = (cs_a or cs_b).name
        rows.append(
            "<tr>"
            f"<td>{html.escape(name)}</td>"
            f"<td>{fmt(cs_a.time_s * 1e6 if cs_a else None, '.3f')}</td>"
            f"<td>{fmt(cs_b.time_s * 1e6 if cs_b else None, '.3f')}</td>"
            f"<td>{fmt(cs_a.achieved_occupancy if cs_a else None, '.2f')}</td>"
            f"<td>{fmt(cs_b.achieved_occupancy if cs_b else None, '.2f')}</td>"
            f"<td>{fmt(cs_a.warp_execution_efficiency if cs_a else None, '.2f')}</td>"
            f"<td>{fmt(cs_b.warp_execution_efficiency if cs_b else None, '.2f')}</td>"
            f"<td>{fmt(cs_a.gld_coalescing_ratio if cs_a else None, '.2f')}</td>"
            f"<td>{fmt(cs_b.gld_coalescing_ratio if cs_b else None, '.2f')}</td>"
            "</tr>"
        )
    return "<table>" + "".join(rows) + "</table>"


def diff_report_html(report: DiffReport) -> str:
    """The full self-contained HTML document for one diff report."""
    legend = "".join(
        f'<span><span class="swatch" style="background:{color}"></span>'
        f"{html.escape(cat)}</span>"
        for cat, color in _CATEGORY_FILL.items()
    )
    top = report.top_term()
    verdict = (
        f"winner: <b>{report.winner.upper()}</b> "
        f"(speedup ×{report.speedup:.2f}, gap "
        f"{report.delta_s * 1e6:+.3f} us) — largest mover: <b>{html.escape(top)}</b>"
    )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro diff: {html.escape(report.matrix)}</title>
<style>{_CSS}</style></head>
<body>
<h1>repro diff — {html.escape(report.matrix)}</h1>
<p class="verdict">A: {html.escape(report.a.label)}
({report.a.time_s * 1e6:.3f} us) &nbsp;vs&nbsp;
B: {html.escape(report.b.label)}
({report.b.time_s * 1e6:.3f} us)<br>{verdict}</p>
<h2>Why B differs from A (attribution waterfall)</h2>
{_svg_waterfall(report)}
{_terms_table(report)}
<h2>Timeline A — {html.escape(report.a.label)}</h2>
{_svg_gantt(report.a.timeline)}
<h2>Timeline B — {html.escape(report.b.label)}</h2>
{_svg_gantt(report.b.timeline)}
<p class="legend">{legend}</p>
<h2>Paired launches</h2>
{_pairs_table(report)}
</body></html>
"""


def write_html_report(report: DiffReport, path) -> Path:
    """Write the diff's self-contained HTML artifact to ``path``."""
    path = Path(path)
    path.write_text(diff_report_html(report))
    return path
