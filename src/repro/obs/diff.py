"""Differential profiling: explain *why* format B beats format A.

``repro diff`` compares two (matrix, format, device, k) cells — two
formats on one device, one format across devices, or SpMV against a
``k``-wide SpMM — and decomposes the end-to-end time difference into the
attribution vocabulary of :mod:`repro.obs.attribution`:

* each side gets a full profile (counters), attribution (waterfall) and
  reconstructed timeline (Gantt);
* launches are paired positionally and their counters diffed;
* the per-term attribution deltas are ranked by magnitude into a
  "why B beats A" table whose values float-sum **exactly** to
  ``timeA − timeB`` (the same fix-point forcing the attributions use).

Everything is read-only over the frozen timing models: building a diff
never changes a modelled time, and the two sides' totals are the very
floats ``spmm_time_s`` returns for those cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec, Precision
from .attribution import TERM_ORDER, Attribution, _force_exact, attribute_format
from .counters import CounterSet
from .profile import FormatProfile, profile_format
from .timeline import Timeline, timeline_from_format


@dataclass(frozen=True)
class DiffSide:
    """One side of a differential profile: a fully observed cell."""

    label: str
    format_name: str
    device: str
    k: int
    time_s: float
    attribution: Attribution
    profile: FormatProfile
    timeline: Timeline


def build_side(
    fmt,
    device: DeviceSpec,
    *,
    k: int = 1,
    matrix: str = "",
    name: str | None = None,
) -> DiffSide:
    """Observe one cell: profile + attribution + timeline, coherently.

    All three views are built from the same format instance on the same
    device, so their totals are the same float — the format's own
    modelled time.  ``name`` overrides the format's own name in the
    label (registry names like ``csr-vector`` are more precise).
    """
    name = name or fmt.name
    label = f"{name}@{device.name}" + (f" k={k}" if k > 1 else "")
    profile = profile_format(fmt, device, k=k, matrix=matrix)
    attribution = attribute_format(fmt, device, k=k)
    timeline = timeline_from_format(fmt, device, k=k)
    return DiffSide(
        label=label,
        format_name=name,
        device=device.name,
        k=k,
        time_s=profile.model_time_s,
        attribution=attribution,
        profile=profile,
        timeline=timeline,
    )


@dataclass(frozen=True)
class DiffReport:
    """A paired comparison of two observed cells.

    ``deltas`` holds ``(term, seconds)`` in canonical term order with
    positive values favouring B (time A spends that B does not); their
    left-to-right float sum equals ``delta_s`` exactly.
    """

    matrix: str
    a: DiffSide
    b: DiffSide
    deltas: tuple[tuple[str, float], ...]

    @property
    def delta_s(self) -> float:
        """``timeA − timeB``: positive when B is faster."""
        return self.a.time_s - self.b.time_s

    @property
    def speedup(self) -> float:
        """B's speedup over A (``timeA / timeB``)."""
        if self.b.time_s <= 0:
            return float("inf") if self.a.time_s > 0 else 1.0
        return self.a.time_s / self.b.time_s

    @property
    def winner(self) -> str:
        """``"a"``, ``"b"``, or ``"tie"`` on modelled time."""
        if self.a.time_s < self.b.time_s:
            return "a"
        if self.b.time_s < self.a.time_s:
            return "b"
        return "tie"

    def ranked(self) -> tuple[tuple[str, float], ...]:
        """The term deltas sorted by magnitude, largest first."""
        return tuple(
            sorted(self.deltas, key=lambda kv: abs(kv[1]), reverse=True)
        )

    def top_term(self) -> str:
        """The term moving the most time between the sides."""
        return self.ranked()[0][0]

    def check_exact(self) -> bool:
        """Whether the canonical-order delta sum equals ``delta_s``."""
        s = 0.0
        for _, v in self.deltas:
            s += v
        return s == self.delta_s

    def launch_pairs(
        self,
    ) -> tuple[tuple[CounterSet | None, CounterSet | None], ...]:
        """Positionally paired per-launch counter sets of the two sides."""
        la, lb = self.a.profile.launches, self.b.profile.launches
        n = max(len(la), len(lb))
        return tuple(
            (la[i] if i < len(la) else None, lb[i] if i < len(lb) else None)
            for i in range(n)
        )

    def render(self) -> str:
        """The ranked "why B beats A" table plus paired launch counters."""
        title = (
            f"== diff: {self.matrix} — A: {self.a.label}  vs  "
            f"B: {self.b.label} =="
        )
        lines = [
            title,
            f"A {self.a.time_s * 1e6:>10.3f} us   "
            f"B {self.b.time_s * 1e6:>10.3f} us   "
            f"delta {self.delta_s * 1e6:>+10.3f} us   "
            f"speedup x{self.speedup:.2f}   winner: {self.winner.upper()}",
            "",
            f"{'term':<16} {'A (us)':>10} {'B (us)':>10} "
            f"{'delta (us)':>11}  why",
        ]
        denom = abs(self.delta_s) if self.delta_s != 0 else 0.0
        for term, delta in self.ranked():
            if delta == 0.0:
                continue
            ta = self.a.attribution.term(term)
            tb = self.b.attribution.term(term)
            share = f"{delta / denom:+.0%} of gap" if denom else ""
            lines.append(
                f"{term:<16} {ta * 1e6:>10.3f} {tb * 1e6:>10.3f} "
                f"{delta * 1e6:>+11.3f}  {share}"
            )
        lines.append("")
        lines.append(
            f"{'launch pair':<30} {'A time':>9} {'B time':>9} "
            f"{'A occ':>5} {'B occ':>5} {'A WEff':>6} {'B WEff':>6}"
        )
        for cs_a, cs_b in self.launch_pairs():
            name = (cs_a or cs_b).name[:30]
            fa = f"{cs_a.time_s * 1e6:9.2f}" if cs_a else "        -"
            fb = f"{cs_b.time_s * 1e6:9.2f}" if cs_b else "        -"
            oa = f"{cs_a.achieved_occupancy:5.2f}" if cs_a else "    -"
            ob = f"{cs_b.achieved_occupancy:5.2f}" if cs_b else "    -"
            wa = f"{cs_a.warp_execution_efficiency:6.2f}" if cs_a else "     -"
            wb = f"{cs_b.warp_execution_efficiency:6.2f}" if cs_b else "     -"
            lines.append(f"{name:<30} {fa} {fb} {oa} {ob} {wa} {wb}")
        return "\n".join(lines)


def diff_sides(matrix: str, a: DiffSide, b: DiffSide) -> DiffReport:
    """Assemble a :class:`DiffReport` with exactness-forced term deltas."""
    terms = {}
    for key in TERM_ORDER:
        terms[key] = a.attribution.term(key) - b.attribution.term(key)
    target = a.time_s - b.time_s
    forced = _force_exact(terms, target)
    return DiffReport(
        matrix=matrix,
        a=a,
        b=b,
        deltas=tuple((key, forced[key]) for key in TERM_ORDER),
    )


def diff_formats(
    matrix_key: str,
    format_a: str,
    format_b: str,
    device_a: DeviceSpec,
    *,
    device_b: DeviceSpec | None = None,
    k_a: int = 1,
    k_b: int | None = None,
    precision: Precision = Precision.SINGLE,
    scale: float | None = None,
) -> DiffReport:
    """Differentially profile two formats on a corpus matrix.

    ``device_b`` and ``k_b`` default to the A side's, so the same call
    compares formats on one device, one format across devices, or SpMV
    against a batched SpMM.  Formats come from the harness's session
    cache, so the totals match the bench/table cells for those keys.
    """
    from ..data.corpus import get_spec
    from ..harness.runner import get_format

    device_b = device_b or device_a
    k_b = k_a if k_b is None else k_b
    spec = get_spec(matrix_key)
    fmt_a = get_format(matrix_key, format_a, precision, scale)
    fmt_b = get_format(matrix_key, format_b, precision, scale)
    side_a = build_side(
        fmt_a, device_a, k=k_a, matrix=spec.abbrev, name=format_a
    )
    side_b = build_side(
        fmt_b, device_b, k=k_b, matrix=spec.abbrev, name=format_b
    )
    return diff_sides(spec.abbrev, side_a, side_b)
