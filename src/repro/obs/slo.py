"""Declarative SLOs with multi-window burn-rate alerting.

The serving monitor evaluates objectives continuously on the serve
engine's *virtual* clock.  An objective is either a latency target
(``p99 <= 5ms`` of admitted-query latency over a rolling window) or an
availability target (``availability >= 0.99``: the admitted fraction of
arrivals).  Alerting follows the SRE multi-window burn-rate recipe,
scaled from wall-clock hours down to simulated milliseconds: each
objective carries an *error budget* (for ``p99 <= X`` the budget is the
1% of requests allowed above ``X``; for ``availability >= Y`` it is
``1 - Y``), and an alert fires when the budget is being consumed faster
than a threshold multiple on **both** a fast leg (a short window, for
responsiveness) and the slow leg (the objective's own window, for
noise immunity).  Every transition is appended to an immutable event
log — nothing here mutates the serve engine's state.

Grammar accepted by :func:`parse_slo` (also the ``--slo`` CLI flag)::

    p99<=0.005@10s          # seconds, explicit window
    p95 <= 2.5ms @ 40ms     # spaces + ms/us units allowed
    availability>=0.99@5ms  # admitted fraction of arrivals

Objectives and windows are in virtual seconds throughout.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from .registry import WindowedCounter

__all__ = [
    "SLO",
    "BurnRatePolicy",
    "AlertEvent",
    "SLOEngine",
    "parse_slo",
]

_UNIT_S = {"s": 1.0, "ms": 1e-3, "us": 1e-6}

_SLO_RE = re.compile(
    r"""^\s*
    (?P<metric>p50|p90|p95|p99|availability)
    \s*(?P<op><=|>=)\s*
    (?P<value>[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)
    \s*(?P<unit>s|ms|us)?
    \s*@\s*
    (?P<window>[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)
    \s*(?P<wunit>s|ms|us)?
    \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class SLO:
    """One declarative objective over a rolling window of virtual time.

    ``metric`` is ``"p50"``/``"p90"``/``"p95"``/``"p99"`` (latency, op
    ``<=``, threshold in seconds) or ``"availability"`` (op ``>=``,
    threshold a fraction in (0, 1]).  ``budget`` is the tolerable bad
    fraction: ``1 - q`` for a latency quantile, ``1 - target`` for
    availability.
    """

    metric: str
    op: str
    threshold: float
    window_s: float
    spec: str  # the raw string the objective was parsed from

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("SLO window must be positive")
        if self.metric == "availability":
            if self.op != ">=":
                raise ValueError("availability objectives use >=")
            if not 0.0 < self.threshold <= 1.0:
                raise ValueError("availability target must be in (0, 1]")
            if self.threshold == 1.0:
                raise ValueError(
                    "availability == 1.0 leaves a zero error budget; "
                    "burn rate would be undefined"
                )
        elif self.metric in ("p50", "p90", "p95", "p99"):
            if self.op != "<=":
                raise ValueError("latency objectives use <=")
            if self.threshold <= 0:
                raise ValueError("latency threshold must be positive")
        else:
            raise ValueError(f"unknown SLO metric {self.metric!r}")

    @property
    def quantile(self) -> float:
        if self.metric == "availability":
            raise ValueError("availability SLOs have no quantile")
        return float(self.metric[1:]) / 100.0

    @property
    def budget(self) -> float:
        """Tolerable bad-event fraction (the error budget)."""
        if self.metric == "availability":
            return 1.0 - self.threshold
        return 1.0 - self.quantile

    def is_bad(self, *, latency_s: float | None, shed: bool) -> bool:
        """Classify one terminal request event against this objective."""
        if self.metric == "availability":
            return shed
        if shed:  # latency objectives only score admitted queries
            return False
        assert latency_s is not None
        return latency_s > self.threshold


def parse_slo(spec: str) -> SLO:
    """Parse ``"p99<=0.005@10s"``-style objective strings."""
    m = _SLO_RE.match(spec)
    if m is None:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected e.g. 'p99<=0.005@10s' "
            "or 'availability>=0.99@5ms'"
        )
    metric = m.group("metric")
    value = float(m.group("value")) * _UNIT_S[m.group("unit") or "s"]
    window = float(m.group("window")) * _UNIT_S[m.group("wunit") or "s"]
    if metric == "availability" and m.group("unit"):
        raise ValueError("availability targets are unitless fractions")
    return SLO(
        metric=metric,
        op=m.group("op"),
        threshold=value,
        window_s=window,
        spec=spec.strip(),
    )


@dataclass(frozen=True)
class BurnRatePolicy:
    """Fast + slow leg thresholds for burn-rate alerting.

    The fast leg reads a window of ``fast_fraction * slo.window_s``
    (the classic 1h-vs-5m pairing is a 1/12 fraction) and must exceed
    ``fast_threshold`` times the budget rate; the slow leg reads the
    full objective window against ``slow_threshold``.  ``min_events``
    suppresses alerts until the fast window has seen enough terminal
    events for the bad fraction to be meaningful.
    """

    fast_fraction: float = 1.0 / 12.0
    fast_threshold: float = 6.0
    slow_threshold: float = 1.0
    min_events: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.fast_fraction <= 1:
            raise ValueError("fast_fraction must be in (0, 1]")
        if self.fast_threshold <= 0 or self.slow_threshold <= 0:
            raise ValueError("burn thresholds must be positive")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")


@dataclass(frozen=True)
class AlertEvent:
    """One transition in the append-only alert log."""

    t_s: float
    slo: str  # the objective's raw spec string
    key: str  # "*" for the global series, else the tenant name
    state: str  # "firing" | "resolved"
    burn_fast: float
    burn_slow: float
    window_events: int


class _BurnSeries:
    """Good/bad counters plus alert state for one (slo, key) pair."""

    __slots__ = ("good", "bad", "firing")

    def __init__(self, slo: SLO, n_buckets: int) -> None:
        self.good = WindowedCounter("slo_good", slo.window_s, n_buckets)
        self.bad = WindowedCounter("slo_bad", slo.window_s, n_buckets)
        self.firing = False


class SLOEngine:
    """Evaluates objectives over the request stream, logging alerts.

    Feed every terminal request event through :meth:`observe` in
    non-decreasing virtual time; read :attr:`alerts` (append-only) and
    :meth:`burn_rates` at will.  One burn series is kept per objective
    for the global stream (key ``"*"``) and one per tenant, so a single
    noisy tenant pins the alert on itself.
    """

    def __init__(
        self,
        slos,
        policy: BurnRatePolicy | None = None,
        n_buckets: int = 48,
    ) -> None:
        self.slos = tuple(
            parse_slo(s) if isinstance(s, str) else s for s in slos
        )
        seen = set()
        for slo in self.slos:
            if slo.spec in seen:
                raise ValueError(f"duplicate SLO {slo.spec!r}")
            seen.add(slo.spec)
        self.policy = policy or BurnRatePolicy()
        self.n_buckets = int(n_buckets)
        # Keep the fast leg at least one bucket wide.
        if self.policy.fast_fraction < 1.0 / self.n_buckets:
            raise ValueError(
                "fast_fraction smaller than one ring bucket; raise "
                "fast_fraction or n_buckets"
            )
        self._series: dict[tuple[str, str], _BurnSeries] = {}
        self.alerts: list[AlertEvent] = []

    def _series_for(self, slo: SLO, key: str) -> _BurnSeries:
        k = (slo.spec, key)
        series = self._series.get(k)
        if series is None:
            series = _BurnSeries(slo, self.n_buckets)
            self._series[k] = series
        return series

    def observe(
        self,
        t_s: float,
        tenant: str,
        *,
        latency_s: float | None = None,
        shed: bool = False,
    ) -> list[AlertEvent]:
        """Score one terminal request event; returns any transitions."""
        if shed == (latency_s is not None):
            raise ValueError("pass exactly one of latency_s / shed=True")
        transitions: list[AlertEvent] = []
        for slo in self.slos:
            bad = slo.is_bad(latency_s=latency_s, shed=shed)
            if slo.metric != "availability" and shed:
                continue  # latency SLOs never see shed requests
            for key in ("*", tenant):
                series = self._series_for(slo, key)
                (series.bad if bad else series.good).inc(t_s)
                event = self._evaluate(slo, key, series, t_s)
                if event is not None:
                    transitions.append(event)
        return transitions

    def _burn(self, slo: SLO, series: _BurnSeries, t_s, window_s):
        good = series.good.total(t_s, window_s)
        bad = series.bad.total(t_s, window_s)
        events = good + bad
        if events == 0:
            return 0.0, 0
        return (bad / events) / slo.budget, int(events)

    def _evaluate(self, slo, key, series, t_s) -> AlertEvent | None:
        pol = self.policy
        fast_w = slo.window_s * pol.fast_fraction
        burn_fast, n_fast = self._burn(slo, series, t_s, fast_w)
        burn_slow, _ = self._burn(slo, series, t_s, None)
        hot = (
            n_fast >= pol.min_events
            and burn_fast >= pol.fast_threshold
            and burn_slow >= pol.slow_threshold
        )
        if hot == series.firing:
            return None
        series.firing = hot
        event = AlertEvent(
            t_s=t_s,
            slo=slo.spec,
            key=key,
            state="firing" if hot else "resolved",
            burn_fast=burn_fast,
            burn_slow=burn_slow,
            window_events=n_fast,
        )
        self.alerts.append(event)
        return event

    def burn_rates(self, t_s: float) -> dict:
        """Current (fast, slow) burn per (slo spec, key) — for display."""
        out = {}
        for (spec, key), series in sorted(self._series.items()):
            slo = next(s for s in self.slos if s.spec == spec)
            fast_w = slo.window_s * self.policy.fast_fraction
            burn_fast, _ = self._burn(slo, series, t_s, fast_w)
            burn_slow, _ = self._burn(slo, series, t_s, None)
            out[(spec, key)] = (burn_fast, burn_slow)
        return out

    @property
    def firing(self) -> list[tuple[str, str]]:
        """Currently-firing (slo spec, key) pairs, sorted."""
        return sorted(
            k for k, series in self._series.items() if series.firing
        )

    @property
    def alert_count(self) -> int:
        """Number of *firing* transitions logged so far."""
        return sum(1 for a in self.alerts if a.state == "firing")


def _fmt_burn(x: float) -> str:
    return "inf" if math.isinf(x) else f"{x:.2f}"


def render_alert(event: AlertEvent) -> str:
    """One human line per alert transition (CLI streaming output)."""
    verb = "FIRING " if event.state == "firing" else "resolved"
    return (
        f"[{event.t_s * 1e3:10.4f} ms] {verb} {event.slo} key={event.key} "
        f"burn fast={_fmt_burn(event.burn_fast)} "
        f"slow={_fmt_burn(event.burn_slow)} n={event.window_events}"
    )
