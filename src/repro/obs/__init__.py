"""``repro.obs`` — the observability layer: counters, spans, exporters.

The simulator computes occupancy, load balance, coalesced traffic and
launch overheads internally; this package makes those quantities
first-class telemetry, in the vocabulary of CUPTI/nvprof:

* :mod:`~repro.obs.counters` — per-launch :class:`CounterSet` derived
  from the exact ``(work, timing)`` pairs the timing model produced,
  plus aggregation across sequences / streams / devices / SpMM batches.
* :mod:`~repro.obs.profiler` — the zero-dependency :class:`Profiler`
  context manager with nested spans, feeding a
  :class:`~repro.obs.registry.MetricsRegistry`.
* :mod:`~repro.obs.profile` — ``nvprof``-style :func:`profile_format`
  with a :class:`RooflineVerdict` (limiting resource + headroom).
* :mod:`~repro.obs.export` — JSONL / CSV / Chrome-counter-track
  exporters and the JSONL schema validator CI gates on.
"""

from .counters import CounterSet, aggregate, launch_counters, with_totals
from .export import (
    chrome_counter_trace,
    counter_set_dict,
    validate_profile_jsonl,
    write_csv,
    write_jsonl,
)
from .profile import (
    FormatProfile,
    RooflineVerdict,
    profile_format,
    verdict_for,
)
from .profiler import Profiler, Span
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "CounterSet",
    "aggregate",
    "launch_counters",
    "with_totals",
    "Profiler",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "FormatProfile",
    "RooflineVerdict",
    "profile_format",
    "verdict_for",
    "counter_set_dict",
    "write_jsonl",
    "write_csv",
    "chrome_counter_trace",
    "validate_profile_jsonl",
]
