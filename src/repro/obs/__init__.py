"""``repro.obs`` — the observability layer: counters, spans, exporters.

The simulator computes occupancy, load balance, coalesced traffic and
launch overheads internally; this package makes those quantities
first-class telemetry, in the vocabulary of CUPTI/nvprof:

* :mod:`~repro.obs.counters` — per-launch :class:`CounterSet` derived
  from the exact ``(work, timing)`` pairs the timing model produced,
  plus aggregation across sequences / streams / devices / SpMM batches.
* :mod:`~repro.obs.profiler` — the zero-dependency :class:`Profiler`
  context manager with nested spans, feeding a
  :class:`~repro.obs.registry.MetricsRegistry`.
* :mod:`~repro.obs.profile` — ``nvprof``-style :func:`profile_format`
  with a :class:`RooflineVerdict` (limiting resource + headroom).
* :mod:`~repro.obs.imbalance` — warp-skew statistics (Gini, tail-warp
  share) behind the paper's Figures 2/3 argument.
* :mod:`~repro.obs.attribution` — critical-path attribution: named
  contributions that float-sum exactly to every modelled time.
* :mod:`~repro.obs.timeline` — read-only timeline reconstruction with
  per-SM / per-stream lanes whose critical path equals the model's
  ``time_s`` bit-for-bit.
* :mod:`~repro.obs.diff` — differential profiling (``repro diff``):
  ranked "why B beats A" tables whose deltas sum exactly to the gap.
* :mod:`~repro.obs.slo` — declarative serving objectives
  (``p99<=0.005@10s``) with multi-window burn-rate alerting, driven by
  the deterministic rolling-window instruments in
  :mod:`~repro.obs.registry` (``WindowedCounter``/``WindowedHistogram``).
* :mod:`~repro.obs.export` — JSONL / CSV / Chrome-counter-track
  exporters plus the JSONL and Chrome-trace schema validators CI gates
  on; :mod:`~repro.obs.report_html` renders the self-contained HTML
  diff artifact.
"""

from .attribution import (
    TERM_ORDER,
    Attribution,
    attribute_engine,
    attribute_format,
    attribute_launch,
    attribute_multigpu,
    attribute_sequence,
    force_exact_sum,
    merge_attributions,
)
from .counters import CounterSet, aggregate, launch_counters, with_totals
from .diff import DiffReport, DiffSide, build_side, diff_formats, diff_sides
from .export import (
    chrome_counter_trace,
    counter_set_dict,
    validate_chrome_trace,
    validate_profile_jsonl,
    write_csv,
    write_diff_jsonl,
    write_jsonl,
)
from .imbalance import (
    TAIL_THRESHOLD,
    tail_warp_count,
    tail_warp_mask,
    tail_warp_share,
    warp_work_gini,
)
from .profile import (
    FormatProfile,
    RooflineVerdict,
    profile_format,
    verdict_for,
)
from .profiler import Profiler, Span
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedCounter,
    WindowedHistogram,
    exact_quantile,
)
from .report_html import (
    diff_report_html,
    svg_gantt,
    svg_sparkline,
    svg_waterfall,
    write_html_report,
)
from .slo import (
    SLO,
    AlertEvent,
    BurnRatePolicy,
    SLOEngine,
    parse_slo,
    render_alert,
)
from .timeline import (
    Lane,
    LaneEvent,
    LaunchDetail,
    Timeline,
    launch_detail,
    timeline_from_acsr,
    timeline_from_engine,
    timeline_from_format,
    timeline_from_multigpu,
    timeline_from_sequence,
)
from .tracing import (
    EXPLAIN_ORDER,
    ExplainTable,
    QueryTracer,
    TraceContext,
    TracingConfig,
    format_slowest,
    group_traces,
    spans_from_records,
    trace_report_lines,
    trace_waterfall,
    write_trace_jsonl,
)
from .tracing import Span as TraceSpan

__all__ = [
    "CounterSet",
    "aggregate",
    "launch_counters",
    "with_totals",
    "Profiler",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedCounter",
    "WindowedHistogram",
    "exact_quantile",
    "SLO",
    "AlertEvent",
    "BurnRatePolicy",
    "SLOEngine",
    "parse_slo",
    "render_alert",
    "FormatProfile",
    "RooflineVerdict",
    "profile_format",
    "verdict_for",
    "counter_set_dict",
    "write_jsonl",
    "write_csv",
    "write_diff_jsonl",
    "chrome_counter_trace",
    "validate_profile_jsonl",
    "validate_chrome_trace",
    "TERM_ORDER",
    "Attribution",
    "attribute_launch",
    "attribute_sequence",
    "attribute_format",
    "attribute_engine",
    "attribute_multigpu",
    "merge_attributions",
    "TAIL_THRESHOLD",
    "warp_work_gini",
    "tail_warp_share",
    "tail_warp_mask",
    "tail_warp_count",
    "Timeline",
    "Lane",
    "LaneEvent",
    "LaunchDetail",
    "launch_detail",
    "timeline_from_sequence",
    "timeline_from_acsr",
    "timeline_from_engine",
    "timeline_from_multigpu",
    "timeline_from_format",
    "DiffReport",
    "DiffSide",
    "build_side",
    "diff_sides",
    "diff_formats",
    "diff_report_html",
    "svg_gantt",
    "svg_sparkline",
    "svg_waterfall",
    "write_html_report",
    "EXPLAIN_ORDER",
    "ExplainTable",
    "QueryTracer",
    "TraceContext",
    "TraceSpan",
    "TracingConfig",
    "force_exact_sum",
    "format_slowest",
    "group_traces",
    "spans_from_records",
    "trace_report_lines",
    "trace_waterfall",
    "write_trace_jsonl",
]
