"""A zero-dependency metrics registry: counters, gauges, histograms.

The :class:`~repro.obs.profiler.Profiler` feeds launch telemetry into a
:class:`MetricsRegistry`; experiments and the harness may register their
own series alongside.  The design follows the Prometheus client model —
named instruments with optional label sets, get-or-create semantics — but
stores everything in plain Python so a snapshot is always JSON-ready.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _key(name: str, labels: dict | None) -> tuple:
    if labels:
        return (name, tuple(sorted(labels.items())))
    return (name, ())


def exact_quantile(values, q: float) -> float:
    """Deterministic linear-interpolation quantile of a finite sample.

    Matches ``numpy.percentile``'s default ("linear") method without the
    dependency: for ``n`` sorted values the ``q``-quantile sits at rank
    ``q * (n - 1)`` and interpolates between the two neighbouring order
    statistics.  ``nan`` for an empty sample.  The serving layer's SLO
    report (p50/p95/p99 modelled latency) is computed with this, so the
    gated numbers are exact order statistics, not histogram estimates.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    data = sorted(float(v) for v in values)
    if not data:
        return math.nan
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    help: str = ""
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    help: str = ""
    labels: dict = field(default_factory=dict)
    value: float = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming distribution summary (count/sum/min/max + buckets).

    ``counts[i]`` tallies observations falling in ``(bounds[i-1],
    bounds[i]]`` (the first bucket covers everything ``<= bounds[0]``);
    ``counts[-1]`` is the overflow bucket past the last bound.
    """

    name: str
    help: str = ""
    labels: dict = field(default_factory=dict)
    bounds: tuple[float, ...] = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
    )
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if tuple(self.bounds) != tuple(sorted(self.bounds)):
            raise ValueError("histogram bounds must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate from the bucket counts.

        Walks the cumulative bucket histogram to the bucket containing
        rank ``q * count`` and interpolates linearly inside it (the
        Prometheus ``histogram_quantile`` rule), clamping to the observed
        ``min``/``max``.  An *estimate* — use :func:`exact_quantile` on
        the raw sample when the exact order statistic matters (the
        serving SLO gates do).  ``nan`` when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        lower = self.min
        for i, upper in enumerate(self.bounds):
            in_bucket = self.counts[i]
            if seen + in_bucket >= rank and in_bucket > 0:
                frac = (rank - seen) / in_bucket
                lo = max(lower, self.min)
                hi = min(upper, self.max)
                if hi < lo:
                    return min(max(self.min, lo), self.max)
                return lo + frac * (hi - lo)
            seen += in_bucket
            lower = upper
        # Overflow bucket: interpolate between the last bound and max.
        in_bucket = self.counts[-1]
        if in_bucket == 0:
            return self.max
        frac = (rank - seen) / in_bucket
        lo = max(lower, self.min)
        return min(lo + frac * (self.max - lo), self.max)


class MetricsRegistry:
    """Named instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(
                name=name, help=help, labels=dict(labels or {}), **kwargs
            )
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        bounds: tuple[float, ...] | None = None,
    ) -> Histogram:
        kwargs = {"bounds": bounds} if bounds is not None else {}
        return self._get_or_create(Histogram, name, help, labels, **kwargs)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument's current state."""
        out: dict = {}
        for metric in self._metrics.values():
            label_suffix = (
                "{"
                + ",".join(f"{k}={v}" for k, v in sorted(metric.labels.items()))
                + "}"
                if metric.labels
                else ""
            )
            key = metric.name + label_suffix
            if isinstance(metric, Histogram):
                out[key] = {
                    "type": "histogram",
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": None if metric.count == 0 else metric.min,
                    "max": None if metric.count == 0 else metric.max,
                    "mean": None if metric.count == 0 else metric.mean,
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                }
            else:
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                value = metric.value
                out[key] = {
                    "type": kind,
                    "value": None if isinstance(value, float)
                    and math.isnan(value) else value,
                }
        return out
