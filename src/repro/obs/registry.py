"""A zero-dependency metrics registry: counters, gauges, histograms.

The :class:`~repro.obs.profiler.Profiler` feeds launch telemetry into a
:class:`MetricsRegistry`; experiments and the harness may register their
own series alongside.  The design follows the Prometheus client model —
named instruments with optional label sets, get-or-create semantics — but
stores everything in plain Python so a snapshot is always JSON-ready.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _key(name: str, labels: dict | None) -> tuple:
    if labels:
        return (name, tuple(sorted(labels.items())))
    return (name, ())


def exact_quantile(values, q: float) -> float:
    """Deterministic linear-interpolation quantile of a finite sample.

    Matches ``numpy.percentile``'s default ("linear") method without the
    dependency: for ``n`` sorted values the ``q``-quantile sits at rank
    ``q * (n - 1)`` and interpolates between the two neighbouring order
    statistics.  ``nan`` for an empty sample.  The serving layer's SLO
    report (p50/p95/p99 modelled latency) is computed with this, so the
    gated numbers are exact order statistics, not histogram estimates.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    data = sorted(float(v) for v in values)
    if any(math.isnan(v) for v in data):
        raise ValueError("exact_quantile got a NaN sample")
    if not data:
        return math.nan
    if len(data) == 1:
        return data[0]
    if q == 0.0:
        return data[0]
    if q == 1.0:
        return data[-1]
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    help: str = ""
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    help: str = ""
    labels: dict = field(default_factory=dict)
    value: float = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming distribution summary (count/sum/min/max + buckets).

    ``counts[i]`` tallies observations falling in ``(bounds[i-1],
    bounds[i]]`` (the first bucket covers everything ``<= bounds[0]``);
    ``counts[-1]`` is the overflow bucket past the last bound.
    """

    name: str
    help: str = ""
    labels: dict = field(default_factory=dict)
    bounds: tuple[float, ...] = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
    )
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if tuple(self.bounds) != tuple(sorted(self.bounds)):
            raise ValueError("histogram bounds must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate from the bucket counts.

        Walks the cumulative bucket histogram to the bucket containing
        rank ``q * count`` and interpolates linearly inside it (the
        Prometheus ``histogram_quantile`` rule), clamping to the observed
        ``min``/``max``.  An *estimate* — use :func:`exact_quantile` on
        the raw sample when the exact order statistic matters (the
        serving SLO gates do).  ``nan`` when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        lower = self.min
        for i, upper in enumerate(self.bounds):
            in_bucket = self.counts[i]
            if seen + in_bucket >= rank and in_bucket > 0:
                frac = (rank - seen) / in_bucket
                lo = max(lower, self.min)
                hi = min(upper, self.max)
                if hi < lo:
                    return min(max(self.min, lo), self.max)
                return lo + frac * (hi - lo)
            seen += in_bucket
            lower = upper
        # Overflow bucket: interpolate between the last bound and max.
        in_bucket = self.counts[-1]
        if in_bucket == 0:
            return self.max
        frac = (rank - seen) / in_bucket
        lo = max(lower, self.min)
        return min(lo + frac * (self.max - lo), self.max)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        Both histograms must share the same bucket bounds — merging
        across incompatible bucketings would silently misplace counts.
        Returns ``self`` so merges chain.
        """
        if not isinstance(other, Histogram):
            raise TypeError("can only merge another Histogram")
        if tuple(self.bounds) != tuple(other.bounds):
            raise ValueError(
                "cannot merge histograms with different bounds: "
                f"{tuple(self.bounds)} vs {tuple(other.bounds)}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self


class _WindowedRing:
    """Shared machinery for rolling-window instruments.

    Time is divided into fixed-width *slices* of ``window_s /
    n_buckets`` seconds; slice ``i`` lands in ring slot ``i %
    n_buckets``.  Writing to a slice newer than the slot's current
    occupant resets the slot first (lazy advancement — no timers), so
    after any sequence of in-order or mildly out-of-order writes the
    ring holds exactly the last ``n_buckets`` slices.  Reads merge the
    slices covering the trailing window ending at the query time; a
    slot is included only when its occupant slice actually falls in
    that range, which makes reads safe at any time without mutating
    state.  Everything is plain arithmetic on the caller's clock —
    deterministic by construction.
    """

    def __init__(
        self,
        name: str,
        window_s: float,
        n_buckets: int = 20,
        help: str = "",
        labels: dict | None = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.window_s = float(window_s)
        self.n_buckets = int(n_buckets)
        self.bucket_s = self.window_s / self.n_buckets
        self._slice_ids = [-1] * self.n_buckets
        self._high_water = -1

    def _slice_of(self, t_s: float) -> int:
        if t_s < 0 or math.isnan(t_s):
            raise ValueError("windowed instruments need t_s >= 0")
        return int(math.floor(t_s / self.bucket_s))

    def _reset_slot(self, slot: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _writable_slot(self, t_s: float) -> int | None:
        """Ring slot for ``t_s``, or None when it already aged out."""
        s = self._slice_of(t_s)
        if s > self._high_water:
            self._high_water = s
        if s <= self._high_water - self.n_buckets:
            return None  # older than anything the ring still tracks
        slot = s % self.n_buckets
        if self._slice_ids[slot] != s:
            if self._slice_ids[slot] > s:
                return None  # slot already holds a newer slice
            self._reset_slot(slot)
            self._slice_ids[slot] = s
        return slot

    def _read_slots(self, t_s: float, window_s: float | None):
        """(slots, span_s) covering the window ending at ``t_s``."""
        w = self.window_s if window_s is None else float(window_s)
        if not 0 < w <= self.window_s * (1 + 1e-12):
            raise ValueError(
                f"read window {w} outside retained window {self.window_s}"
            )
        m = max(1, int(round(w / self.bucket_s)))
        cur = self._slice_of(t_s)
        slots = []
        for s in range(max(0, cur - m + 1), cur + 1):
            slot = s % self.n_buckets
            if self._slice_ids[slot] == s:
                slots.append(slot)
        span = min(m, cur + 1) * self.bucket_s
        return slots, span


class WindowedCounter(_WindowedRing):
    """A counter with a rolling-window view (ring of time buckets).

    ``inc(t_s)`` credits the bucket containing virtual time ``t_s``;
    ``total(t_s)`` / ``rate(t_s)`` merge the buckets covering the
    trailing window on read.  ``lifetime`` keeps the all-time total
    (increments that aged out of the ring before being recorded are
    still counted there).
    """

    def __init__(self, name, window_s, n_buckets=20, help="", labels=None):
        super().__init__(name, window_s, n_buckets, help, labels)
        self._totals = [0.0] * self.n_buckets
        self.lifetime = 0.0

    def _reset_slot(self, slot: int) -> None:
        self._totals[slot] = 0.0

    def inc(self, t_s: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.lifetime += amount
        slot = self._writable_slot(t_s)
        if slot is not None:
            self._totals[slot] += amount

    def total(self, t_s: float, window_s: float | None = None) -> float:
        slots, _ = self._read_slots(t_s, window_s)
        return sum(self._totals[s] for s in slots)

    def rate(self, t_s: float, window_s: float | None = None) -> float:
        """Events per second over the trailing window.

        The denominator is the bucket-aligned span actually covered, so
        early in a run (before a full window has elapsed) the rate is
        not diluted by empty future history.
        """
        slots, span = self._read_slots(t_s, window_s)
        return sum(self._totals[s] for s in slots) / span


class WindowedHistogram(_WindowedRing):
    """A distribution over a rolling window, with *exact* quantiles.

    Each ring bucket keeps its raw samples; reads concatenate the
    buckets covering the trailing window (in slice order, then
    insertion order — fully deterministic) and answer quantiles with
    :func:`exact_quantile`.  Suited to the serving monitor's scale —
    thousands of samples per window, not millions — where exactness is
    worth more than O(1) summaries.
    """

    def __init__(self, name, window_s, n_buckets=20, help="", labels=None):
        super().__init__(name, window_s, n_buckets, help, labels)
        self._samples: list[list[float]] = [[] for _ in range(self.n_buckets)]
        self._exemplars: list[list[object]] = [
            [] for _ in range(self.n_buckets)
        ]
        self.lifetime_count = 0

    def _reset_slot(self, slot: int) -> None:
        self._samples[slot] = []
        self._exemplars[slot] = []

    def observe(
        self, t_s: float, value: float, exemplar: object = None
    ) -> None:
        self.lifetime_count += 1
        slot = self._writable_slot(t_s)
        if slot is not None:
            self._samples[slot].append(float(value))
            self._exemplars[slot].append(exemplar)

    def values(self, t_s: float, window_s: float | None = None) -> tuple:
        slots, _ = self._read_slots(t_s, window_s)
        out: list[float] = []
        for s in slots:
            out.extend(self._samples[s])
        return tuple(out)

    def window_count(self, t_s: float, window_s: float | None = None) -> int:
        slots, _ = self._read_slots(t_s, window_s)
        return sum(len(self._samples[s]) for s in slots)

    def quantile(
        self, q: float, t_s: float, window_s: float | None = None
    ) -> float:
        """Exact ``q``-quantile of the trailing window (nan if empty)."""
        return exact_quantile(self.values(t_s, window_s), q)

    def exemplars(
        self, t_s: float, window_s: float | None = None
    ) -> tuple[tuple[float, object], ...]:
        """``(value, exemplar)`` pairs for the trailing window.

        Same deterministic slice/insertion order as :meth:`values`;
        observations recorded without an exemplar pair with ``None``.
        """
        slots, _ = self._read_slots(t_s, window_s)
        out: list[tuple[float, object]] = []
        for s in slots:
            out.extend(zip(self._samples[s], self._exemplars[s]))
        return tuple(out)

    def exemplar_near(
        self, q: float, t_s: float, window_s: float | None = None
    ) -> object:
        """The exemplar attached to the smallest sample >= the exact
        ``q``-quantile (ties broken by window order; ``None`` when the
        window is empty or no qualifying sample carries an exemplar)."""
        pairs = self.exemplars(t_s, window_s)
        if not pairs:
            return None
        cut = exact_quantile(tuple(v for v, _ in pairs), q)
        best: tuple[float, object] | None = None
        for value, ex in pairs:
            if ex is None or value < cut:
                continue
            if best is None or value < best[0]:
                best = (value, ex)
        return None if best is None else best[1]


class MetricsRegistry:
    """Named instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(
                name=name, help=help, labels=dict(labels or {}), **kwargs
            )
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        bounds: tuple[float, ...] | None = None,
    ) -> Histogram:
        kwargs = {"bounds": bounds} if bounds is not None else {}
        return self._get_or_create(Histogram, name, help, labels, **kwargs)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument's current state."""
        out: dict = {}
        for metric in self._metrics.values():
            label_suffix = (
                "{"
                + ",".join(f"{k}={v}" for k, v in sorted(metric.labels.items()))
                + "}"
                if metric.labels
                else ""
            )
            key = metric.name + label_suffix
            if isinstance(metric, Histogram):
                out[key] = {
                    "type": "histogram",
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": None if metric.count == 0 else metric.min,
                    "max": None if metric.count == 0 else metric.max,
                    "mean": None if metric.count == 0 else metric.mean,
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                }
            else:
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                value = metric.value
                out[key] = {
                    "type": kind,
                    "value": None if isinstance(value, float)
                    and math.isnan(value) else value,
                }
        return out
