"""End-to-end causal query tracing for the serving stack.

:class:`QueryTracer` watches one :meth:`ServeEngine.run_trace
<repro.serve.server.ServeEngine.run_trace>` exactly like
:class:`~repro.serve.monitor.ServeMonitor` does — buffer-only hooks on
the engine's virtual clock, all derivation deferred until after the
``ServeResult`` is frozen — and produces one *span tree* per request:

* The **root span**'s duration is the request's modelled
  ``latency_s`` bit-for-bit, and its children (admission → queue wait →
  batch formation → compute) float-sum left-to-right to the root
  exactly, because they are the very floats the engine summed:
  ``latency = queue_wait + formation + compute``.
* Every served batch gets a companion trace whose **compute span**
  carries flow links fanning in the member requests and drills down
  into per-round kernel spans backed by the PR-5
  :func:`~repro.serve.monitor.batch_timeline` reconstruction
  (``timeline.time_s == compute_s`` bit-for-bit).
* The **explain table** splits a request's latency into
  ``queue_wait`` / ``formation`` plus the append-only
  :data:`~repro.obs.attribution.TERM_ORDER` attribution terms of its
  compute, forced exact so the flat sum reproduces ``latency_s``
  bit-for-bit (:data:`EXPLAIN_ORDER`).

Trace identity is deterministic: ``trace_id`` is a SHA-1 prefix of
``"{seed}:request:{rid}"``, so the same seed always yields byte-identical
trace output.  Sampling is two-stage: **head** sampling keeps a
deterministic hash bucket of traces (``head_rate``), and **tail**
sampling force-keeps every shed request, every completion above the
rolling windowed p99 (same arming rule as the monitor's flight
recorder), and every request overlapping a burn-rate
:class:`~repro.obs.slo.AlertEvent` window.  The latency histogram the
tail sampler replays carries trace-id *exemplars*
(:meth:`~repro.obs.registry.WindowedHistogram.exemplar_near`), so "show
me a p99 trace" is answerable from the summary alone.

Like the monitor, the tracer is provably read-only: a run with a tracer
attached is byte-identical to one without, swept over seeds × devices
in the tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..apps.power_method import DEFAULT_VECTOR_PASSES, vector_ops_work
from .attribution import (
    TERM_ORDER,
    attribute_format,
    attribute_sequence,
    force_exact_sum,
    merge_attributions,
)
from .registry import WindowedHistogram
from .timeline import Lane, LaneEvent, Timeline

__all__ = [
    "EXPLAIN_ORDER",
    "ExplainTable",
    "QueryTracer",
    "Span",
    "TraceContext",
    "TracingConfig",
    "format_slowest",
    "group_traces",
    "spans_from_records",
    "trace_report_lines",
    "trace_waterfall",
    "write_trace_jsonl",
]

#: Flat summation order of the explain table — queue/formation first,
#: then the compute decomposition.  Append-only, like ``TERM_ORDER``.
EXPLAIN_ORDER = ("queue_wait", "formation") + TERM_ORDER

#: Gantt/SVG category per span kind (the PR-5 timeline vocabulary).
_KIND_CATEGORY = {
    "request": "sync",
    "admission": "overhead",
    "queue_wait": "sync",
    "formation": "overhead",
    "compute": "kernel",
    "batch": "sync",
    "batch_compute": "kernel",
    "rounds": "kernel",
}

#: Tail-sampling reasons, in reporting order.
_TAIL_REASONS = ("shed", "p99_tail", "alert")


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """Deterministic identity of one trace (request- or batch-scoped).

    ``trace_id`` is a pure function of the run seed and the entity
    index, so the same seed always yields the same ids — and therefore
    byte-identical trace artifacts.
    """

    trace_id: str
    seed: int
    scope: str  # "request" | "batch"
    index: int

    @classmethod
    def for_request(cls, seed: int, rid: int) -> "TraceContext":
        return cls(
            trace_id=_digest(f"{seed}:request:{rid}"),
            seed=seed,
            scope="request",
            index=rid,
        )

    @classmethod
    def for_batch(cls, seed: int, batch_id: int) -> "TraceContext":
        return cls(
            trace_id=_digest(f"{seed}:batch:{batch_id}"),
            seed=seed,
            scope="batch",
            index=batch_id,
        )

    def span_id(self, n: int) -> str:
        """The ``n``-th span id of this trace (0 is the root)."""
        return f"{self.trace_id}:{n}"

    def head_keep(self, head_rate: float) -> bool:
        """Deterministic hash-bucket head-sampling decision.

        The first 52 bits of the trace id map to [0, 1); the trace is
        head-kept when that bucket falls below ``head_rate``.
        """
        if head_rate >= 1.0:
            return True
        if head_rate <= 0.0:
            return False
        bucket = int(self.trace_id[:13], 16) / float(16**13)
        return bucket < head_rate


@dataclass(frozen=True)
class Span:
    """One node of a causal span tree."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    kind: str
    start_s: float
    duration_s: float
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    #: Span ids this span causally links to (cross-trace flow edges).
    links: tuple[str, ...] = ()

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_record(self) -> dict:
        """The JSONL ``span`` record of this span."""
        return {
            "record": "span",
            "name": self.name,
            "path": f"trace/{self.trace_id}/{self.span_id}",
            "time_s": self.duration_s,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "start_s": self.start_s,
            "status": self.status,
            "attrs": self.attrs,
            "links": list(self.links),
        }

    @classmethod
    def from_record(cls, obj: dict) -> "Span":
        """Rebuild a span from its JSONL record (round-trip inverse)."""
        return cls(
            trace_id=obj["trace_id"],
            span_id=obj["span_id"],
            parent_id=obj.get("parent_id"),
            name=obj["name"],
            kind=obj["kind"],
            start_s=obj["start_s"],
            duration_s=obj["time_s"],
            status=obj.get("status", "ok"),
            attrs=obj.get("attrs", {}),
            links=tuple(obj.get("links", ())),
        )


@dataclass(frozen=True)
class TracingConfig:
    """Sampling knobs of one :class:`QueryTracer` (virtual seconds)."""

    #: The run seed trace ids derive from (same seed ⇒ same ids).
    seed: int = 0
    #: Head-sampling keep fraction (deterministic hash bucket).
    head_rate: float = 1.0
    #: Rolling window of the tail sampler's latency histogram.
    window_s: float = 0.005
    #: Ring buckets per window.
    n_buckets: int = 20
    #: Windowed samples needed before the p99 tail trigger arms.
    p99_min_samples: int = 16

    def __post_init__(self) -> None:
        if not 0.0 <= self.head_rate <= 1.0:
            raise ValueError("head_rate must be in [0, 1]")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if self.p99_min_samples < 1:
            raise ValueError("p99_min_samples must be >= 1")


@dataclass(frozen=True)
class ExplainTable:
    """Exact latency decomposition of one traced request.

    ``terms`` carries every :data:`EXPLAIN_ORDER` name exactly once, in
    order; summing the values left to right reproduces ``latency_s``
    bit-for-bit — the tracing extension of the attribution invariant.
    """

    trace_id: str
    rid: int
    tenant: str
    graph: str
    device: str
    latency_s: float
    terms: tuple[tuple[str, float], ...]

    def term(self, name: str) -> float:
        for key, value in self.terms:
            if key == name:
                return value
        raise KeyError(name)

    def as_dict(self) -> dict[str, float]:
        return dict(self.terms)

    def nonzero(self) -> tuple[tuple[str, float], ...]:
        """Only the terms that carry time (ideal always included)."""
        return tuple(
            (k, v) for k, v in self.terms if v != 0.0 or k == "ideal"
        )

    def check_exact(self) -> bool:
        s = 0.0
        for _, v in self.terms:
            s += v
        return s == self.latency_s

    @classmethod
    def from_root_span(cls, root: Span) -> "ExplainTable | None":
        """Rebuild the table from a request root span's ``explain`` attr
        (``None`` for shed roots and spans without one)."""
        terms = root.attrs.get("explain")
        if not isinstance(terms, dict):
            return None
        return cls(
            trace_id=root.trace_id,
            rid=int(root.attrs.get("rid", -1)),
            tenant=str(root.attrs.get("tenant", "?")),
            graph=str(root.attrs.get("graph", "?")),
            device=str(root.attrs.get("device", "?")),
            latency_s=root.duration_s,
            terms=tuple(terms.items()),
        )

    def render(self) -> str:
        """A one-screen waterfall table (microseconds and shares)."""
        lines = [
            f"explain: trace {self.trace_id} rid={self.rid} "
            f"tenant={self.tenant} {self.graph} @ {self.device} — "
            f"{self.latency_s * 1e6:.3f} us"
        ]
        for key, value in self.nonzero():
            share = value / self.latency_s if self.latency_s > 0 else 0.0
            bar = "#" * max(0, int(round(32 * max(0.0, share))))
            lines.append(
                f"  {key:<16} {value * 1e6:>10.3f} us {share:>7.1%} {bar}"
            )
        mark = "exact" if self.check_exact() else "INEXACT"
        lines.append(f"  ({mark}: terms sum to latency bit-for-bit)")
        return "\n".join(lines)


class _TraceSnapshot:
    """Frozen facts about one batch, captured at close time."""

    __slots__ = (
        "record",
        "iterations",
        "bill",
        "queue_depth",
        "pending_after",
        "completions",
    )

    def __init__(
        self, record, iterations, bill, queue_depth, pending_after,
        completions,
    ):
        self.record = record
        self.iterations = iterations
        self.bill = bill
        self.queue_depth = queue_depth
        self.pending_after = pending_after
        self.completions = completions


class QueryTracer:
    """Watches one serve run and derives causal span trees.

    Attach by passing the tracer to ``run_trace(requests, tracer=...)``
    (optionally next to a :class:`~repro.serve.monitor.ServeMonitor`;
    pass the same monitor as ``monitor=`` here to enable alert-overlap
    tail sampling).  A tracer watches exactly one run — reuse raises.
    All span/sampling/explain derivation is lazy: the engine-facing
    hooks only buffer frozen snapshots, and nothing is computed until
    the first read-out, so tracing adds near-zero cost to the run
    itself.
    """

    def __init__(
        self, config: TracingConfig | None = None, monitor=None
    ) -> None:
        self.config = config or TracingConfig()
        self.monitor = monitor
        self._engine = None
        self._device = None
        self._result = None
        self._finalized = False
        self._built = False
        self._sheds: list[tuple] = []
        self._snapshots: list[_TraceSnapshot] = []
        self._att_cache: dict[tuple, tuple] = {}
        self._explain_cache: dict[tuple, dict] = {}

    # ---------------- engine-facing hooks (buffer-only) ----------------

    def _begin_run(self, engine) -> None:
        if self._engine is not None or self._finalized:
            raise RuntimeError(
                "a QueryTracer watches exactly one run; create a fresh one"
            )
        self._engine = engine
        self._device = engine.device

    def _observe_shed(self, outcome, queue_depth: int) -> None:
        self._sheds.append((outcome, queue_depth))

    def _observe_batch(
        self, record, iterations, bill, queue_depth, pending_after,
        completions,
    ) -> None:
        self._snapshots.append(
            _TraceSnapshot(
                record=record,
                iterations=tuple(iterations),
                bill=bill,
                queue_depth=queue_depth,
                pending_after=pending_after,
                completions=tuple(completions),
            )
        )

    def _finalize(self, result) -> None:
        if self._finalized:
            raise RuntimeError("tracer already finalized")
        self._finalized = True
        self._result = result

    # --------------------- lazy derivation (build) ----------------------

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError(
                "tracer not finalized; attach it to run_trace first"
            )

    def _ensure_built(self) -> None:
        if self._built:
            return
        self._require_finalized()
        self._built = True
        self._sample()
        self._build_spans()
        self._build_summary()

    # ------------------------- sampling pass ----------------------------

    def _sample(self) -> None:
        cfg = self.config
        self._contexts: dict[int, TraceContext] = {}
        self._reasons: dict[int, list[str]] = {}
        self._by_rid: dict[int, tuple] = {}  # rid -> (done, snap)
        for snap in self._snapshots:
            for done in snap.completions:
                self._by_rid[done.request.rid] = (done, snap)
        for outcome in self._result.requests:
            rid = outcome.request.rid
            ctx = TraceContext.for_request(cfg.seed, rid)
            self._contexts[rid] = ctx
            reasons = ["head"] if ctx.head_keep(cfg.head_rate) else []
            self._reasons[rid] = reasons
        for shed, _depth in self._sheds:
            self._reasons[shed.request.rid].append("shed")

        # p99 tail replay, completion order — the rolling p99 is checked
        # *before* each observation and only once armed, exactly like
        # the monitor's flight recorder.
        hist = WindowedHistogram(
            "trace_latency_s", cfg.window_s, cfg.n_buckets
        )
        done_events = sorted(
            (done.completion_s, done.request.rid, done)
            for done, _snap in self._by_rid.values()
        )
        self._end_t = self._result.makespan_s
        for t, rid, done in done_events:
            self._end_t = max(self._end_t, t)
            if hist.window_count(t) >= cfg.p99_min_samples:
                if done.latency_s > hist.quantile(0.99, t):
                    self._reasons[rid].append("p99_tail")
            hist.observe(
                t, done.latency_s, exemplar=self._contexts[rid].trace_id
            )
        self._hist = hist

        # Alert-overlap replay: a request whose [arrival, completion]
        # interval intersects a firing→resolved alert window is kept.
        intervals = self._alert_intervals()
        if intervals:
            for done, _snap in self._by_rid.values():
                rid = done.request.rid
                lo = done.request.arrival_s
                hi = done.completion_s
                for a_lo, a_hi in intervals:
                    if a_lo <= hi and lo <= a_hi:
                        self._reasons[rid].append("alert")
                        break

        self._kept = {
            rid: tuple(
                r
                for r in ("head",) + _TAIL_REASONS
                if r in reasons
            )
            for rid, reasons in self._reasons.items()
            if reasons
        }
        self._kept_batches = {
            snap.record.batch_id
            for snap in self._snapshots
            if any(
                done.request.rid in self._kept
                for done in snap.completions
            )
        }

    def _alert_intervals(self) -> list[tuple[float, float]]:
        if self.monitor is None:
            return []
        open_at: dict[tuple, float] = {}
        intervals: list[tuple[float, float]] = []
        for event in self.monitor.alerts:
            key = (event.slo, event.key)
            if event.state == "firing":
                open_at.setdefault(key, event.t_s)
            elif event.state == "resolved" and key in open_at:
                intervals.append((open_at.pop(key), event.t_s))
        for start in open_at.values():
            intervals.append((start, float("inf")))
        intervals.sort()
        return intervals

    # -------------------------- span building ---------------------------

    def _batch_timeline(self, snap: _TraceSnapshot) -> Timeline:
        # Imported lazily: obs must not import serve at module scope.
        from ..serve.monitor import batch_timeline

        return batch_timeline(snap.record, snap.bill, self._device.name)

    def _width_attributions(self, graph: str, w: int) -> tuple:
        key = (graph, w)
        cached = self._att_cache.get(key)
        if cached is None:
            ctx = self._engine._graphs[graph]
            spmm = attribute_format(ctx.fmt, self._device, k=w)
            vec_work = vector_ops_work(
                ctx.plan.n_rows * w, DEFAULT_VECTOR_PASSES, ctx.fmt.precision
            )
            vec = attribute_sequence(
                self._device, [vec_work], name=f"vector-ops[k={w}]"
            )
            cached = (spmm, vec)
            self._att_cache[key] = cached
        return cached

    def _compute_terms(self, done, snap: _TraceSnapshot) -> dict:
        """The request's compute split into ``TERM_ORDER`` terms.

        The request is billed through its own last round only
        (``bill.widths[:iterations]``); the merged attribution is forced
        exact against ``compute_s``, so the split is cacheable per
        ``(graph, round-width prefix)``.
        """
        prefix = snap.bill.widths[: done.iterations]
        key = (snap.record.graph, prefix)
        cached = self._explain_cache.get(key)
        if cached is None:
            parts = []
            for w in prefix:
                spmm, vec = self._width_attributions(snap.record.graph, w)
                parts.append(spmm)
                parts.append(vec)
            merged = merge_attributions(
                parts,
                name=f"trace/{snap.record.graph}[{len(prefix)} rounds]",
                device=self._device.name,
                time_s=done.compute_s,
            )
            cached = merged.as_dict()
            self._explain_cache[key] = cached
        return dict(cached)

    def _explain_terms(self, done, snap: _TraceSnapshot) -> dict:
        """Flat ``EXPLAIN_ORDER`` dict, forced exact to ``latency_s``."""
        terms = {
            "queue_wait": done.queue_wait_s,
            "formation": done.formation_s,
        }
        terms.update(self._compute_terms(done, snap))
        return force_exact_sum(
            terms, done.latency_s, adjust="ideal", order=EXPLAIN_ORDER
        )

    def _build_spans(self) -> None:
        spans: list[Span] = []
        device = self._device.name
        batch_ctx = {
            snap.record.batch_id: TraceContext.for_batch(
                self.config.seed, snap.record.batch_id
            )
            for snap in self._snapshots
            if snap.record.batch_id in self._kept_batches
        }

        for outcome in self._result.requests:
            rid = outcome.request.rid
            reasons = self._kept.get(rid)
            if reasons is None:
                continue
            ctx = self._contexts[rid]
            req = outcome.request
            if rid in self._by_rid:
                done, snap = self._by_rid[rid]
                root_attrs = {
                    "rid": rid,
                    "tenant": req.tenant,
                    "graph": req.graph,
                    "node": req.node,
                    "device": device,
                    "batch_id": done.batch_id,
                    "worker": done.worker,
                    "k": done.k,
                    "iterations": done.iterations,
                    "converged": done.converged,
                    "sampled_by": list(reasons),
                    "explain": self._explain_terms(done, snap),
                }
                spans.append(
                    Span(
                        trace_id=ctx.trace_id,
                        span_id=ctx.span_id(0),
                        parent_id=None,
                        name=f"request rid={rid}",
                        kind="request",
                        start_s=req.arrival_s,
                        duration_s=done.latency_s,
                        status="ok",
                        attrs=root_attrs,
                    )
                )
                # Child durations are the engine's own latency addends,
                # in its own order — 0.0 (admission) + queue_wait +
                # formation + compute sums to the root bit-for-bit.
                cursor = req.arrival_s
                children = (
                    ("admission", 0.0, {}, ()),
                    (
                        "queue_wait",
                        done.queue_wait_s,
                        {"batch_close_s": snap.record.close_s},
                        (),
                    ),
                    ("formation", done.formation_s, {}, ()),
                    (
                        "compute",
                        done.compute_s,
                        {"iterations": done.iterations},
                        (batch_ctx[done.batch_id].span_id(2),),
                    ),
                )
                for n, (kind, dur, attrs, links) in enumerate(
                    children, start=1
                ):
                    spans.append(
                        Span(
                            trace_id=ctx.trace_id,
                            span_id=ctx.span_id(n),
                            parent_id=ctx.span_id(0),
                            name=kind,
                            kind=kind,
                            start_s=cursor,
                            duration_s=dur,
                            status="ok",
                            attrs=attrs,
                            links=links,
                        )
                    )
                    cursor = cursor + dur
            else:
                shed = outcome
                spans.append(
                    Span(
                        trace_id=ctx.trace_id,
                        span_id=ctx.span_id(0),
                        parent_id=None,
                        name=f"request rid={rid}",
                        kind="request",
                        start_s=req.arrival_s,
                        duration_s=0.0,
                        status="shed",
                        attrs={
                            "rid": rid,
                            "tenant": req.tenant,
                            "graph": req.graph,
                            "node": req.node,
                            "device": device,
                            "reason": shed.reason,
                            "retry_after_s": shed.retry_after_s,
                            "sampled_by": list(reasons),
                        },
                    )
                )
                spans.append(
                    Span(
                        trace_id=ctx.trace_id,
                        span_id=ctx.span_id(1),
                        parent_id=ctx.span_id(0),
                        name="admission",
                        kind="admission",
                        start_s=req.arrival_s,
                        duration_s=0.0,
                        status="shed",
                        attrs={"reason": shed.reason},
                    )
                )

        self._timelines: dict[int, Timeline] = {}
        for snap in self._snapshots:
            b = snap.record
            if b.batch_id not in self._kept_batches:
                continue
            ctx = batch_ctx[b.batch_id]
            member_links = tuple(
                self._contexts[done.request.rid].span_id(4)
                for done in snap.completions
                if done.request.rid in self._kept
            )
            spans.append(
                Span(
                    trace_id=ctx.trace_id,
                    span_id=ctx.span_id(0),
                    parent_id=None,
                    name=f"batch-{b.batch_id} {b.graph} k={b.k}",
                    kind="batch",
                    start_s=b.start_s,
                    duration_s=b.duration_s,
                    attrs={
                        "batch_id": b.batch_id,
                        "graph": b.graph,
                        "worker": b.worker,
                        "k": b.k,
                        "close_s": b.close_s,
                        "device": device,
                        "queue_depth": snap.queue_depth,
                        "coalescer_pending": snap.pending_after,
                    },
                )
            )
            spans.append(
                Span(
                    trace_id=ctx.trace_id,
                    span_id=ctx.span_id(1),
                    parent_id=ctx.span_id(0),
                    name="formation",
                    kind="formation",
                    start_s=b.start_s,
                    duration_s=b.formation_s,
                )
            )
            timeline = self._batch_timeline(snap)
            self._timelines[b.batch_id] = timeline
            compute_start = b.start_s + b.formation_s
            spans.append(
                Span(
                    trace_id=ctx.trace_id,
                    span_id=ctx.span_id(2),
                    parent_id=ctx.span_id(0),
                    name="compute",
                    kind="batch_compute",
                    start_s=compute_start,
                    duration_s=b.compute_s,
                    attrs={"timeline_time_s": timeline.time_s},
                    links=member_links,
                )
            )
            for n, ev in enumerate(timeline.lanes[0].events, start=3):
                spans.append(
                    Span(
                        trace_id=ctx.trace_id,
                        span_id=ctx.span_id(n),
                        parent_id=ctx.span_id(2),
                        name=ev.name,
                        kind="rounds",
                        start_s=compute_start + ev.start_s,
                        duration_s=ev.duration_s,
                        attrs={"category": ev.category},
                    )
                )

        self._spans: tuple[Span, ...] = tuple(spans)
        self._traces: dict[str, tuple[Span, ...]] = group_traces(
            self._spans
        )

    def _build_summary(self) -> None:
        admitted = len(self._by_rid)
        seen = len(self._result.requests)
        tail_counts = {
            r: sum(1 for kept in self._kept.values() if r in kept)
            for r in _TAIL_REASONS
        }
        self._summary = {
            "requests_seen": seen,
            "admitted": admitted,
            "shed": seen - admitted,
            "kept": len(self._kept),
            "dropped": seen - len(self._kept),
            "head_kept": sum(
                1 for kept in self._kept.values() if "head" in kept
            ),
            "tail_kept": tail_counts,
            "batches": len(self._snapshots),
            "batches_kept": len(self._kept_batches),
            "p99_exemplar": self._hist.exemplar_near(0.99, self._end_t),
        }

    # --------------------------- read-outs ------------------------------

    @property
    def summary(self) -> dict:
        """Sampling counts (kept/dropped, head vs tail, batches)."""
        self._ensure_built()
        return self._summary

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every kept span (request traces first, then batch traces)."""
        self._ensure_built()
        return self._spans

    @property
    def traces(self) -> dict[str, tuple[Span, ...]]:
        """Kept spans grouped by trace id (root first, file order)."""
        self._ensure_built()
        return self._traces

    @property
    def request_roots(self) -> tuple[Span, ...]:
        """Kept request root spans, slowest first (ties by rid)."""
        self._ensure_built()
        roots = [
            s
            for s in self.spans
            if s.parent_id is None and s.kind == "request"
        ]
        roots.sort(
            key=lambda s: (-s.duration_s, s.attrs.get("rid", 0))
        )
        return tuple(roots)

    def explain(self, trace_id: str) -> ExplainTable:
        """The exact latency decomposition of one kept request trace."""
        self._ensure_built()
        spans = self.traces.get(trace_id)
        if not spans:
            raise KeyError(f"trace {trace_id!r} not kept by this tracer")
        table = ExplainTable.from_root_span(spans[0])
        if table is None:
            raise ValueError(
                f"trace {trace_id!r} has no explain table (shed request?)"
            )
        return table

    def waterfall(self, trace_id: str) -> Timeline:
        """One kept trace's span tree as a PR-5 timeline."""
        self._ensure_built()
        spans = self.traces.get(trace_id)
        if not spans:
            raise KeyError(f"trace {trace_id!r} not kept by this tracer")
        return trace_waterfall(spans)

    def batch_timeline_for(self, batch_id: int) -> Timeline:
        """The kept batch's compute timeline (``time_s == compute_s``)."""
        self._ensure_built()
        timeline = self._timelines.get(batch_id)
        if timeline is None:
            raise KeyError(f"batch {batch_id!r} not kept by this tracer")
        return timeline

    def meta(self) -> dict:
        """Tracer configuration + sampling summary, for ``meta`` lines."""
        self._ensure_built()
        return {
            "seed": self.config.seed,
            "head_rate": self.config.head_rate,
            "window_s": self.config.window_s,
            "n_buckets": self.config.n_buckets,
            "p99_min_samples": self.config.p99_min_samples,
            **self.summary,
        }

    def jsonl_lines(self) -> list[str]:
        """The kept spans as JSON lines (request traces, then batches)."""
        self._ensure_built()
        return [json.dumps(s.to_record()) for s in self.spans]

    def chrome_trace(self) -> dict:
        """Chrome trace-event export: span lanes plus fan-in flows.

        Request traces render on a ``trace:requests`` pid (one tid per
        rid), batch traces on ``trace:batches`` (one tid per batch);
        every kept member's compute span emits a flow-start (``"s"``)
        that finishes (``"f"``) at its batch's compute span.  Passes
        :func:`~repro.obs.export.validate_chrome_trace`.
        """
        self._ensure_built()
        events: list[dict] = []
        flows: list[tuple] = []
        compute_lane: dict[str, tuple[Span, int]] = {}
        for span in self.spans:
            root = self.traces[span.trace_id][0]
            if root.kind == "request":
                pid, tid = "trace:requests", root.attrs["rid"]
            else:
                pid, tid = "trace:batches", root.attrs["batch_id"]
            events.append(
                {
                    "name": f"{span.kind}: {span.name}",
                    "cat": "trace",
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                    },
                }
            )
            if span.kind == "compute":
                compute_lane[span.span_id] = (span, tid)
            elif span.kind == "batch_compute":
                for link in span.links:
                    flows.append((span, tid, *compute_lane[link]))
        # Flow starts land at each member's compute span, flow finishes
        # at the batch compute span's end — emitted starts-first so the
        # validator sees every "s" before its "f".
        for bspan, btid, member, member_tid in flows:
            flow_id = int(
                _digest(f"{bspan.span_id}->{member.span_id}")[:8], 16
            )
            events.append(
                {
                    "name": "batch-fanin",
                    "cat": "flow",
                    "ph": "s",
                    "id": flow_id,
                    "ts": member.start_s * 1e6,
                    "pid": "trace:requests",
                    "tid": member_tid,
                }
            )
            events.append(
                {
                    "name": "batch-fanin",
                    "cat": "flow",
                    "ph": "f",
                    "id": flow_id,
                    "ts": bspan.end_s * 1e6,
                    "pid": "trace:batches",
                    "tid": btid,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ns"}


# ----------------------- file-side reconstruction -----------------------


def spans_from_records(objs) -> tuple[Span, ...]:
    """The trace spans among parsed JSONL records, file order.

    Only ``span`` records carrying a ``trace_id`` are trace spans; the
    serve report's plain batch spans are passed over.
    """
    return tuple(
        Span.from_record(obj)
        for obj in objs
        if isinstance(obj, dict)
        and obj.get("record") == "span"
        and "trace_id" in obj
    )


def group_traces(spans) -> dict[str, tuple[Span, ...]]:
    """Spans grouped by trace id (insertion order preserved)."""
    grouped: dict[str, list[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    return {tid: tuple(ss) for tid, ss in grouped.items()}


def trace_waterfall(spans) -> Timeline:
    """One trace's spans as a PR-5 timeline (one lane per span).

    Lanes keep file order (parents precede children) and indent by tree
    depth; the timeline's ``time_s`` is the root span's duration — for
    request traces, the request's exact ``latency_s``.
    """
    spans = tuple(spans)
    if not spans:
        raise ValueError("cannot build a waterfall from zero spans")
    root = spans[0]
    by_id = {s.span_id: s for s in spans}
    lanes = []
    origin = root.start_s
    for span in spans:
        d = 0
        parent = span.parent_id
        while parent is not None and parent in by_id:
            d += 1
            parent = by_id[parent].parent_id
        lanes.append(
            Lane(
                label=("  " * d) + span.kind,
                events=(
                    LaneEvent(
                        name=span.name,
                        start_s=max(0.0, span.start_s - origin),
                        duration_s=span.duration_s,
                        category=_KIND_CATEGORY.get(span.kind, "kernel"),
                    ),
                ),
            )
        )
    return Timeline(
        name=f"trace/{root.trace_id}",
        device_name=str(root.attrs.get("device", "?")),
        source="trace",
        time_s=root.duration_s,
        lanes=tuple(lanes),
        critical_lane=0,
    )


def format_slowest(roots, limit: int = 5) -> str:
    """A one-screen slowest-requests table over request root spans."""
    lines = [
        f"{'trace_id':<18} {'rid':>5} {'tenant':<10} {'graph':<6} "
        f"{'status':<6} {'k':>3} {'iters':>5} {'latency_us':>12}"
    ]
    for root in tuple(roots)[:limit]:
        a = root.attrs
        lines.append(
            f"{root.trace_id:<18} {a.get('rid', '?'):>5} "
            f"{str(a.get('tenant', '?')):<10} "
            f"{str(a.get('graph', '?')):<6} {root.status:<6} "
            f"{a.get('k', '-'):>3} {a.get('iterations', '-'):>5} "
            f"{root.duration_s * 1e6:>12.3f}"
        )
    return "\n".join(lines)


def trace_report_lines(tracer: QueryTracer, **meta) -> list[str]:
    """The trace artifact as JSON lines: one ``meta``, then the spans."""
    head = {"record": "meta", "kind": "trace", **meta}
    head["tracing"] = tracer.meta()
    return [json.dumps(head)] + tracer.jsonl_lines()


def write_trace_jsonl(tracer: QueryTracer, path, **meta) -> Path:
    """Dump one tracer's kept spans as a validated JSONL artifact."""
    path = Path(path)
    path.write_text("\n".join(trace_report_lines(tracer, **meta)) + "\n")
    return path
