"""``nvprof``-style per-format profiling built on the counter layer.

:func:`profile_format` runs one (modelled) SpMV/SpMM of a format and
returns a :class:`FormatProfile`: per-launch counter sets, the aggregate,
and a :class:`RooflineVerdict` naming the limiting resource and the
headroom left on it.  The profile's totals are the *same floats* the
format's ``spmv_time_s`` / ``spmm_time_s`` return — profiling observes
the model, it never re-models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec
from ..gpu.simulator import (
    add_launch_observer,
    canonicalize_works,
    remove_launch_observer,
    simulate_kernel,
)
from .counters import CounterSet, aggregate, launch_counters, with_totals


@dataclass(frozen=True)
class RooflineVerdict:
    """Which roofline resource limits a launch set, and by how much."""

    #: ``compute`` | ``memory`` | ``latency`` | ``launch``.
    bound: str
    #: Human description of the limiting resource (with numbers).
    limiter: str
    #: Achieved fraction of the limiting resource's capacity.
    utilization: float
    #: ``1 - utilization`` (floored at 0): room left on the limiter.
    headroom: float

    def render(self) -> str:
        return (
            f"{self.bound}-bound — limited by {self.limiter} "
            f"({self.utilization:.1%} utilised, "
            f"{self.headroom:.1%} headroom)"
        )


def verdict_for(cs: CounterSet) -> RooflineVerdict:
    """Classify a counter set against the roofline.

    The bound is :attr:`CounterSet.bound` — the same max-of-terms rule
    ``KernelTiming.bound`` and every ``bound_summary()`` use, so the
    verdict can never contradict them.
    """
    bound = cs.bound
    if bound == "memory":
        limiter = (
            f"DRAM bandwidth: {cs.achieved_dram_gbps:.1f} of "
            f"{cs.peak_dram_gbps:.1f} GB/s peak"
        )
        utilization = cs.dram_bw_fraction
    elif bound == "compute":
        limiter = (
            f"SM issue throughput: {cs.gflops:.1f} of "
            f"{cs.peak_gflops:.0f} GFLOP/s peak (useful flops)"
        )
        utilization = cs.flop_fraction
    elif bound == "latency":
        limiter = (
            "DRAM latency on the critical warp "
            f"(achieved occupancy {cs.achieved_occupancy:.0%}, "
            f"warp efficiency {cs.warp_execution_efficiency:.0%})"
        )
        utilization = cs.achieved_occupancy
    else:  # launch
        limiter = (
            f"kernel-launch overhead across {cs.n_launches} launches"
        )
        utilization = cs.launch_overhead_share
    utilization = max(0.0, min(1.0, utilization))
    return RooflineVerdict(
        bound=bound,
        limiter=limiter,
        utilization=utilization,
        headroom=max(0.0, 1.0 - utilization),
    )


@dataclass(frozen=True)
class FormatProfile:
    """Counters + verdict for one format's SpMV/SpMM on one device."""

    format_name: str
    device: str
    k: int
    launches: tuple[CounterSet, ...]
    total: CounterSet
    verdict: RooflineVerdict
    #: The format's own modelled time — equal to ``total.time_s``.
    model_time_s: float
    matrix: str = ""
    notes: str = ""

    def render(self) -> str:
        """The nvprof-style table plus the roofline verdict."""
        title = self.format_name
        if self.matrix:
            title = f"{self.matrix} · {title}"
        title += f" · {self.device}"
        if self.k > 1:
            title += f" · k={self.k}"
        header = (
            f"{'Launch':<28} {'Time(us)':>9} {'Occ':>5} {'WEff':>5} "
            f"{'Coal':>5} {'Tex':>5} {'DRAM(KB)':>9} {'BW%':>6} "
            f"{'GFLOP/s':>8} {'FP%':>6} {'DP':>6}  Bound"
        )
        lines = [f"== profile: {title} ==", header, "-" * len(header)]
        for cs in (*self.launches, self.total):
            is_total = cs is self.total
            if is_total:
                lines.append("-" * len(header))
            tex = "-" if cs.tex_hit_rate is None else f"{cs.tex_hit_rate:.2f}"
            dp = (
                f"{cs.dp_children}"
                + (f"!{cs.dp_overflow}" if cs.dp_overflow else "")
                if cs.dp_children
                else "-"
            )
            lines.append(
                f"{cs.name[:28]:<28} {cs.time_s * 1e6:>9.2f} "
                f"{cs.achieved_occupancy:>5.2f} "
                f"{cs.warp_execution_efficiency:>5.2f} "
                f"{cs.gld_coalescing_ratio:>5.2f} {tex:>5} "
                f"{cs.dram_bytes / 1024.0:>9.1f} "
                f"{100 * cs.dram_bw_fraction:>6.1f} "
                f"{cs.gflops:>8.2f} {100 * cs.flop_fraction:>6.1f} "
                f"{dp:>6}  {cs.bound}"
            )
        lines.append("verdict: " + self.verdict.render())
        if self.notes:
            lines.append(f"({self.notes})")
        return "\n".join(lines)


def profile_format(
    fmt, device: DeviceSpec, *, k: int = 1, matrix: str = ""
) -> FormatProfile:
    """Profile one SpMV (``k=1``) or ``k``-wide SpMM of ``fmt``.

    Generic formats re-run the exact per-launch roofline evaluation of
    ``simulate_sequence`` (same works, same order, same floats); ACSR is
    profiled through its DP-aware :func:`~repro.core.dispatch.time_spmv`
    model via the simulator's observer tap.  Either way
    ``profile.total.time_s == fmt.spmm_time_s(device, k)`` exactly.
    """
    from ..core.acsr import ACSRFormat  # local: core imports formats

    if isinstance(fmt, ACSRFormat):
        return _profile_acsr(fmt, device, k=k, matrix=matrix)
    works = fmt.cached_kernel_works(device, k=k)
    canonicalize_works(works)  # one batched grouping pass for all launches
    launches = tuple(
        launch_counters(device, w, simulate_kernel(device, w)) for w in works
    )
    total = aggregate(launches, name="total")
    return FormatProfile(
        format_name=fmt.name,
        device=device.name,
        k=k,
        launches=launches,
        total=total,
        verdict=verdict_for(total),
        model_time_s=fmt.spmm_time_s(device, k=k),
        matrix=matrix,
        notes=f"{len(launches)} launches",
    )


def _profile_acsr(fmt, device: DeviceSpec, *, k: int, matrix: str) -> FormatProfile:
    """ACSR path: capture the pooled launch from the DP-aware model."""
    from ..core.dispatch import time_spmv

    captured = []

    def tap(dev, work, timing):
        captured.append((work, timing))

    add_launch_observer(tap)
    try:
        acsr = time_spmv(fmt.csr, fmt.plan_for(device), device, k=k)
    finally:
        remove_launch_observer(tap)
    work, timing = captured[-1]
    pool = launch_counters(
        device,
        work,
        timing,
        dp_children=acsr.n_row_grids,
        dp_overflow=acsr.dp_overflow,
    )
    n_host = acsr.n_bin_grids + (1 if acsr.n_row_grids else 0)
    total = with_totals(
        pool,
        time_s=acsr.time_s,
        launch_overhead_s=acsr.launch_s,
        n_launches=max(1, n_host),
        name="total",
    )
    notes = (
        f"{acsr.n_bin_grids} bin grids + "
        f"{acsr.n_row_grids} DP child grids; "
        f"enqueue {acsr.enqueue_s * 1e6:.2f} us overlapped with the pool"
    )
    return FormatProfile(
        format_name=fmt.name,
        device=device.name,
        k=k,
        launches=(pool,),
        total=total,
        verdict=verdict_for(total),
        model_time_s=acsr.time_s,
        matrix=matrix,
        notes=notes,
    )
