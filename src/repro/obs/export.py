"""Exporters + schema validation for profiler output.

Three formats, all dependency-free:

* **JSONL** — one JSON object per line, each tagged with a ``record``
  kind (``meta`` / ``launch`` / ``span`` / ``aggregate`` / ``metrics``,
  ``attribution`` / ``delta`` for differential profiles, ``request`` /
  ``slo`` for serving reports, ``metric`` / ``alert`` / ``flightrec``
  for the live serve monitor's rolling series).  This is
  the machine-readable artifact CI uploads and gates on;
  :func:`validate_profile_jsonl` is the gate and
  :func:`write_diff_jsonl` the diff-report writer.
* **CSV** — one row per launch, for spreadsheets.
* **Chrome counter tracks** — ``"ph": "C"`` events that render as stacked
  counter charts alongside the kernel timeline in ``chrome://tracing`` /
  Perfetto; :func:`validate_chrome_trace` schema-checks any exported
  trace dict (kernel timelines included).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .counters import CounterSet

#: Fields every launch/aggregate JSONL record must carry.
_REQUIRED_COUNTER_FIELDS = (
    "name",
    "device",
    "n_launches",
    "k",
    "time_s",
    "launch_overhead_s",
    "dram_bytes",
    "flops",
    "n_warps",
    "achieved_occupancy",
    "warp_execution_efficiency",
    "gld_coalescing_ratio",
    "dp_children",
    "dp_overflow",
    "bound",
)

#: Counter fields constrained to [0, 1].
_UNIT_INTERVAL_FIELDS = (
    "achieved_occupancy",
    "warp_execution_efficiency",
    "gld_coalescing_ratio",
    "launch_overhead_share",
)

_RECORD_KINDS = (
    "meta",
    "launch",
    "span",
    "aggregate",
    "metrics",
    "attribution",
    "delta",
    "request",
    "slo",
    "metric",
    "alert",
    "flightrec",
)

#: Scopes a serve-monitor ``metric`` record may carry.
_METRIC_SCOPES = ("global", "tenant", "graph")

#: Rolling-percentile fields of a ``metric`` record (numeric or null).
_METRIC_PERCENTILE_FIELDS = ("p50_s", "p95_s", "p99_s")

#: Flight-recorder triggers.
_FLIGHTREC_TRIGGERS = ("p99_tail", "alert")

#: Modelled-latency fields every admitted ``request`` record must carry
#: (``latency_s`` is their plain float sum, in this order).
_REQUEST_LATENCY_FIELDS = (
    "queue_wait_s",
    "formation_s",
    "compute_s",
    "latency_s",
)

#: Percentile fields of the serve report's ``slo`` summary record.
_SLO_PERCENTILE_FIELDS = ("p50_s", "p95_s", "p99_s")

#: CSV column order (stable; append-only for compatibility).
CSV_COLUMNS = (
    "name",
    "device",
    "n_launches",
    "k",
    "time_s",
    "launch_overhead_s",
    "compute_s",
    "memory_s",
    "critical_path_s",
    "dram_bytes",
    "flops",
    "n_warps",
    "achieved_occupancy",
    "warp_execution_efficiency",
    "gld_coalescing_ratio",
    "tex_hit_rate",
    "dp_children",
    "dp_overflow",
    "bound",
    "dram_bw_fraction",
    "flop_fraction",
    "launch_overhead_share",
    "gflops",
)


def counter_set_dict(cs: CounterSet) -> dict:
    """JSON-ready dict of a counter set, derived ratios included."""
    return {
        "name": cs.name,
        "device": cs.device,
        "n_launches": cs.n_launches,
        "k": cs.k,
        "time_s": cs.time_s,
        "launch_overhead_s": cs.launch_overhead_s,
        "compute_s": cs.compute_s,
        "memory_s": cs.memory_s,
        "critical_path_s": cs.critical_path_s,
        "dram_bytes": cs.dram_bytes,
        "flops": cs.flops,
        "n_warps": cs.n_warps,
        "achieved_occupancy": cs.achieved_occupancy,
        "warp_execution_efficiency": cs.warp_execution_efficiency,
        "gld_coalescing_ratio": cs.gld_coalescing_ratio,
        "tex_hit_rate": cs.tex_hit_rate,
        "dp_children": cs.dp_children,
        "dp_overflow": cs.dp_overflow,
        "bound": cs.bound,
        "dram_bw_fraction": cs.dram_bw_fraction,
        "flop_fraction": cs.flop_fraction,
        "launch_overhead_share": cs.launch_overhead_share,
        "gflops": cs.gflops,
        "peak_dram_gbps": cs.peak_dram_gbps,
        "peak_gflops": cs.peak_gflops,
    }


def write_jsonl(profiler, path, **meta) -> Path:
    """Dump a profiler's span tree + metrics as JSON lines.

    Layout: one ``meta`` line, one ``span`` line per span (with its
    aggregate when non-empty), one ``launch`` line per recorded counter
    set (tagged with its span path), one ``aggregate`` line for the
    grand total, one ``metrics`` line with the registry snapshot.
    """
    path = Path(path)
    lines = [
        json.dumps(
            {"record": "meta", "profile": profiler.name, **meta}
        )
    ]
    for span_path, span in profiler.root.walk():
        entry: dict = {
            "record": "span",
            "name": span.name,
            "path": "/".join(span_path),
            "attrs": span.attrs,
            "time_s": span.total_time_s,
        }
        total = span.total()
        if total is not None:
            entry["counters"] = counter_set_dict(total)
        lines.append(json.dumps(entry))
        for cs in span.records:
            lines.append(
                json.dumps(
                    {
                        "record": "launch",
                        "span": "/".join(span_path),
                        **counter_set_dict(cs),
                    }
                )
            )
    grand = profiler.total()
    if grand is not None:
        lines.append(
            json.dumps({"record": "aggregate", **counter_set_dict(grand)})
        )
    lines.append(
        json.dumps(
            {"record": "metrics", "metrics": profiler.registry.snapshot()}
        )
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def write_csv(records, path) -> Path:
    """One CSV row per counter set (launch-level export)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for cs in records:
            row = counter_set_dict(cs)
            writer.writerow({col: row.get(col) for col in CSV_COLUMNS})
    return path


def chrome_counter_trace(records, name: str = "profile") -> dict:
    """Chrome ``"ph": "C"`` counter-track events for a launch stream.

    Launches are laid end to end (the sequence model); each contributes
    points on four counter tracks — occupancy, warp efficiency, DRAM
    %-of-peak, and coalescing — so the tracks render as stepped charts
    above the kernel timeline.
    """
    events = []
    t_us = 0.0
    for cs in records:
        args_by_track = {
            "occupancy": {"value": round(cs.achieved_occupancy, 4)},
            "warp_efficiency": {
                "value": round(cs.warp_execution_efficiency, 4)
            },
            "dram_pct_of_peak": {
                "value": round(100.0 * cs.dram_bw_fraction, 2)
            },
            "gld_coalescing": {"value": round(cs.gld_coalescing_ratio, 4)},
        }
        for track, args in args_by_track.items():
            events.append(
                {
                    "name": track,
                    "cat": "counters",
                    "ph": "C",
                    "ts": t_us,
                    "pid": cs.device or name,
                    "args": args,
                }
            )
        t_us += cs.time_s * 1e6
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_diff_jsonl(report, path, **meta) -> Path:
    """Dump one :class:`~repro.obs.diff.DiffReport` as JSON lines.

    Layout: one ``meta`` line, one ``aggregate`` line per side (full
    counter dict — so the file also passes
    :func:`validate_profile_jsonl`), one ``attribution`` line per side,
    and one ``delta`` line whose per-term values float-sum exactly to
    ``timeA − timeB``.
    """
    path = Path(path)
    lines = [
        json.dumps(
            {
                "record": "meta",
                "kind": "diff",
                "matrix": report.matrix,
                "a": report.a.label,
                "b": report.b.label,
                **meta,
            }
        )
    ]
    for side_key in ("a", "b"):
        side = getattr(report, side_key)
        lines.append(
            json.dumps(
                {
                    "record": "aggregate",
                    "side": side_key,
                    **counter_set_dict(side.profile.total),
                }
            )
        )
        lines.append(
            json.dumps(
                {
                    "record": "attribution",
                    "side": side_key,
                    "name": side.attribution.name,
                    "device": side.attribution.device,
                    "time_s": side.attribution.time_s,
                    "terms": side.attribution.as_dict(),
                }
            )
        )
    lines.append(
        json.dumps(
            {
                "record": "delta",
                "time_a_s": report.a.time_s,
                "time_b_s": report.b.time_s,
                "delta_s": report.delta_s,
                "speedup": report.speedup,
                "winner": report.winner,
                "top_term": report.top_term(),
                "terms": dict(report.deltas),
            }
        )
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema-check a Chrome trace-event dict; returns error messages.

    Checked: ``traceEvents`` is a list of objects; every event carries
    ``name``/``cat``/``ph``/``ts``/``pid``; ``ph`` is a complete event
    (``X``, which additionally needs ``dur`` and ``tid``), a counter
    sample (``C``, which needs numeric ``args`` values), or a flow
    start/finish (``s``/``f``, which need ``id`` and ``tid``, and every
    ``f`` must follow a matching ``s``); and within each ``(pid, tid)``
    lane — or ``(pid, name)`` counter track — timestamps never run
    backwards.
    """
    errors: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: dict[tuple, float] = {}
    flow_start: dict[object, float] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "cat", "ph", "ts", "pid"):
            if key not in ev:
                errors.append(f"{where}: missing key {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "C", "s", "f"):
            errors.append(f"{where}: unsupported ph {ph!r}")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts={ts!r} not a non-negative number")
            continue
        if ph in ("s", "f"):
            if "tid" not in ev:
                errors.append(f"{where}: flow event missing 'tid'")
            fid = ev.get("id")
            if not isinstance(fid, (int, str)):
                errors.append(f"{where}: flow event needs an 'id'")
                continue
            if ph == "s":
                if fid not in flow_start:
                    flow_start[fid] = ts
            elif fid not in flow_start:
                errors.append(
                    f"{where}: flow finish id={fid!r} without a start"
                )
            elif ts < flow_start[fid]:
                errors.append(
                    f"{where}: flow finish id={fid!r} before its start "
                    f"({ts} < {flow_start[fid]})"
                )
            continue
        if ph == "X":
            if "tid" not in ev:
                errors.append(f"{where}: complete event missing 'tid'")
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: dur={dur!r} not a non-negative number"
                )
            lane = ("X", ev.get("pid"), ev.get("tid"))
        else:
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                errors.append(f"{where}: counter args must be numeric")
            lane = ("C", ev.get("pid"), ev.get("name"))
        prev = last_ts.get(lane)
        if prev is not None and ts < prev:
            errors.append(
                f"{where}: ts runs backwards on {lane} "
                f"({ts} < {prev})"
            )
        last_ts[lane] = max(prev, ts) if prev is not None else ts
    return errors


def _validate_counter_fields(obj: dict, where: str) -> list[str]:
    errors = []
    for field in _REQUIRED_COUNTER_FIELDS:
        if field not in obj:
            errors.append(f"{where}: missing field {field!r}")
    for field in _UNIT_INTERVAL_FIELDS:
        v = obj.get(field)
        if isinstance(v, (int, float)) and not -1e-9 <= v <= 1.0 + 1e-9:
            errors.append(f"{where}: {field}={v} outside [0, 1]")
    for field in ("time_s", "dram_bytes", "flops"):
        v = obj.get(field)
        if isinstance(v, (int, float)) and v < 0:
            errors.append(f"{where}: {field}={v} negative")
    bound = obj.get("bound")
    if bound is not None and bound not in (
        "compute",
        "memory",
        "latency",
        "launch",
    ):
        errors.append(f"{where}: unknown bound {bound!r}")
    return errors


def _validate_request_fields(obj: dict, where: str) -> list[str]:
    """Field checks for one serve-report ``request`` record."""
    errors = []
    for field in ("tenant", "graph", "node", "arrival_s", "status"):
        if field not in obj:
            errors.append(f"{where}: request missing field {field!r}")
    status = obj.get("status")
    if status not in ("ok", "shed"):
        errors.append(f"{where}: unknown request status {status!r}")
    arrival = obj.get("arrival_s")
    if isinstance(arrival, (int, float)) and arrival < 0:
        errors.append(f"{where}: arrival_s={arrival} negative")
    if status == "ok":
        for field in _REQUEST_LATENCY_FIELDS:
            v = obj.get(field)
            if not isinstance(v, (int, float)):
                errors.append(f"{where}: request missing numeric {field!r}")
            elif v < 0:
                errors.append(f"{where}: {field}={v} negative")
        k = obj.get("k")
        if not isinstance(k, int) or k < 1:
            errors.append(f"{where}: admitted request needs batch width k >= 1")
    elif status == "shed":
        v = obj.get("retry_after_s")
        if not isinstance(v, (int, float)) or v < 0:
            errors.append(
                f"{where}: shed request needs non-negative retry_after_s"
            )
    return errors


def _validate_slo_fields(obj: dict, where: str) -> list[str]:
    """Field checks for the serve-report ``slo`` summary record."""
    errors = []
    qps = obj.get("queries_per_s")
    if not isinstance(qps, (int, float)) or qps < 0:
        errors.append(f"{where}: slo needs non-negative queries_per_s")
    for field in _SLO_PERCENTILE_FIELDS:
        v = obj.get(field)
        # null is allowed (no admitted requests -> no percentiles).
        if v is not None and not isinstance(v, (int, float)):
            errors.append(f"{where}: {field}={v!r} not numeric or null")
    return errors


def _validate_metric_fields(obj: dict, where: str) -> list[str]:
    """Field checks for one serve-monitor rolling ``metric`` record."""
    errors = []
    t = obj.get("t_s")
    if not isinstance(t, (int, float)) or t < 0:
        errors.append(f"{where}: metric needs non-negative t_s")
    if obj.get("scope") not in _METRIC_SCOPES:
        errors.append(f"{where}: unknown metric scope {obj.get('scope')!r}")
    if not isinstance(obj.get("key"), str):
        errors.append(f"{where}: metric needs a string 'key'")
    w = obj.get("window_s")
    if not isinstance(w, (int, float)) or w <= 0:
        errors.append(f"{where}: metric needs positive window_s")
    for field in ("qps", "shed_rate"):
        v = obj.get(field)
        if not isinstance(v, (int, float)) or v < 0:
            errors.append(f"{where}: metric needs non-negative {field!r}")
    shed_rate = obj.get("shed_rate")
    if isinstance(shed_rate, (int, float)) and shed_rate > 1.0 + 1e-9:
        errors.append(f"{where}: shed_rate={shed_rate} above 1")
    n = obj.get("n")
    if not isinstance(n, int) or n < 0:
        errors.append(f"{where}: metric needs integer window count 'n'")
    for field in _METRIC_PERCENTILE_FIELDS:
        v = obj.get(field)
        if v is not None and not isinstance(v, (int, float)):
            errors.append(f"{where}: {field}={v!r} not numeric or null")
    depth = obj.get("queue_depth")
    if depth is not None and (not isinstance(depth, int) or depth < 0):
        errors.append(
            f"{where}: queue_depth={depth!r} not a non-negative int or null"
        )
    return errors


def _validate_alert_fields(obj: dict, where: str) -> list[str]:
    """Field checks for one burn-rate ``alert`` transition record."""
    errors = []
    t = obj.get("t_s")
    if not isinstance(t, (int, float)) or t < 0:
        errors.append(f"{where}: alert needs non-negative t_s")
    for field in ("slo", "key"):
        if not isinstance(obj.get(field), str):
            errors.append(f"{where}: alert needs a string {field!r}")
    if obj.get("state") not in ("firing", "resolved"):
        errors.append(f"{where}: unknown alert state {obj.get('state')!r}")
    for field in ("burn_fast", "burn_slow"):
        v = obj.get(field)
        if not isinstance(v, (int, float)) or v < 0:
            errors.append(f"{where}: alert needs non-negative {field!r}")
    n = obj.get("window_events")
    if not isinstance(n, int) or n < 0:
        errors.append(f"{where}: alert needs integer window_events")
    return errors


def _validate_flightrec_fields(obj: dict, where: str) -> list[str]:
    """Field checks for one flight-recorder capture record.

    Beyond presence/type checks this enforces the recorder's exactness
    contract: ``timeline_time_s`` equals the batch's billed
    ``compute_s`` bit-for-bit, and the attribution terms float-sum (in
    listed order) to the same total — JSON round-trips IEEE doubles
    exactly, so both survive serialisation.
    """
    errors = []
    if obj.get("trigger") not in _FLIGHTREC_TRIGGERS:
        errors.append(
            f"{where}: unknown flightrec trigger {obj.get('trigger')!r}"
        )
    for field in ("t_s", "latency_s", "close_s", "start_s",
                  "formation_s", "compute_s", "end_s"):
        v = obj.get(field)
        if not isinstance(v, (int, float)) or v < 0:
            errors.append(f"{where}: flightrec needs non-negative {field!r}")
    for field in ("batch_id", "worker", "rid", "queue_depth",
                  "coalescer_pending"):
        v = obj.get(field)
        if not isinstance(v, int) or v < 0:
            errors.append(f"{where}: flightrec needs integer {field!r}")
    k = obj.get("k")
    if not isinstance(k, int) or k < 1:
        errors.append(f"{where}: flightrec needs batch width k >= 1")
    for field in ("tenant", "graph"):
        if not isinstance(obj.get(field), str):
            errors.append(f"{where}: flightrec needs a string {field!r}")
    for field in ("rids", "iterations", "alerts"):
        if not isinstance(obj.get(field), list):
            errors.append(f"{where}: flightrec needs a list {field!r}")
    tl = obj.get("timeline_time_s")
    compute = obj.get("compute_s")
    if not isinstance(tl, (int, float)):
        errors.append(f"{where}: flightrec needs numeric timeline_time_s")
    elif isinstance(compute, (int, float)) and tl != compute:
        errors.append(
            f"{where}: timeline_time_s={tl!r} != compute_s={compute!r} "
            "(the capture must reproduce the billed compute bit-for-bit)"
        )
    terms = obj.get("attribution")
    if not isinstance(terms, dict) or not all(
        isinstance(v, (int, float)) for v in terms.values()
    ):
        errors.append(f"{where}: flightrec needs numeric 'attribution'")
    elif isinstance(tl, (int, float)):
        s = 0.0
        for v in terms.values():
            s += v
        if s != tl:
            errors.append(
                f"{where}: attribution terms sum to {s!r}, not "
                f"timeline_time_s={tl!r}"
            )
    return errors


def _validate_trace_span_fields(obj: dict, where: str) -> list[str]:
    """Field checks for one causal-trace ``span`` record.

    Trace spans (spans carrying a ``trace_id``) additionally promise:
    non-negative start/duration, a valid status, string links, and —
    for batch compute spans — ``timeline_time_s`` equal to the span's
    duration bit-for-bit (the PR-5 timeline reconstruction contract).
    """
    errors = []
    for field in ("trace_id", "span_id", "kind"):
        if not isinstance(obj.get(field), str):
            errors.append(f"{where}: trace span needs a string {field!r}")
    if obj.get("status") not in ("ok", "shed"):
        errors.append(
            f"{where}: unknown trace span status {obj.get('status')!r}"
        )
    parent = obj.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        errors.append(f"{where}: parent_id must be a string or null")
    for field in ("start_s", "time_s"):
        v = obj.get(field)
        if not isinstance(v, (int, float)) or v < 0:
            errors.append(
                f"{where}: trace span needs non-negative {field!r}"
            )
    attrs = obj.get("attrs", {})
    if not isinstance(attrs, dict):
        errors.append(f"{where}: trace span attrs must be an object")
        attrs = {}
    links = obj.get("links", [])
    if not isinstance(links, list) or not all(
        isinstance(x, str) for x in links
    ):
        errors.append(f"{where}: trace span links must be a string list")
    if obj.get("kind") == "batch_compute":
        tl = attrs.get("timeline_time_s")
        dur = obj.get("time_s")
        if not isinstance(tl, (int, float)):
            errors.append(
                f"{where}: batch_compute span needs numeric "
                "attrs.timeline_time_s"
            )
        elif isinstance(dur, (int, float)) and tl != dur:
            errors.append(
                f"{where}: timeline_time_s={tl!r} != time_s={dur!r} "
                "(the timeline must reproduce the billed compute "
                "bit-for-bit)"
            )
    return errors


def _validate_trace_linkage(trace_spans: list[tuple[str, dict]]) -> list[str]:
    """Cross-line checks over all trace spans of one JSONL file.

    Each trace must have exactly one root; every ``parent_id`` resolves
    within its trace and every ``links`` entry resolves file-wide.  On
    ``request`` roots the exact-sum identities are re-checked *after*
    the JSON round-trip: the children's file-order float sum equals the
    root duration, and the ``explain`` terms (summed in listed order)
    equal it too.
    """
    errors: list[str] = []
    all_ids = {obj.get("span_id") for _, obj in trace_spans}
    by_trace: dict[str, list[tuple[str, dict]]] = {}
    for where, obj in trace_spans:
        by_trace.setdefault(obj.get("trace_id"), []).append((where, obj))
    for tid, spans in by_trace.items():
        local_ids = {obj.get("span_id") for _, obj in spans}
        for where, obj in spans:
            parent = obj.get("parent_id")
            if parent is not None and parent not in local_ids:
                errors.append(
                    f"{where}: parent_id {parent!r} not in trace {tid}"
                )
            for link in obj.get("links", ()):
                if isinstance(link, str) and link not in all_ids:
                    errors.append(
                        f"{where}: link {link!r} resolves to no span in "
                        "this file"
                    )
        roots = [
            (where, obj)
            for where, obj in spans
            if obj.get("parent_id") is None
        ]
        if len(roots) != 1:
            errors.append(
                f"trace {tid}: expected exactly one root span, "
                f"got {len(roots)}"
            )
            continue
        root_where, root = roots[0]
        if root.get("kind") != "request":
            continue
        root_time = root.get("time_s")
        children = [
            obj
            for _, obj in spans
            if obj.get("parent_id") == root.get("span_id")
        ]
        if children and isinstance(root_time, (int, float)):
            s = 0.0
            for child in children:
                v = child.get("time_s")
                if isinstance(v, (int, float)):
                    s += v
            if s != root_time:
                errors.append(
                    f"{root_where}: child spans sum to {s!r}, not the "
                    f"root's time_s={root_time!r} (exact-sum identity)"
                )
        attrs = root.get("attrs")
        explain = attrs.get("explain") if isinstance(attrs, dict) else None
        if explain is not None:
            if not isinstance(explain, dict) or not all(
                isinstance(v, (int, float)) for v in explain.values()
            ):
                errors.append(
                    f"{root_where}: explain terms must be numeric"
                )
            elif isinstance(root_time, (int, float)):
                s = 0.0
                for v in explain.values():
                    s += v
                if s != root_time:
                    errors.append(
                        f"{root_where}: explain terms sum to {s!r}, not "
                        f"the root's time_s={root_time!r}"
                    )
    return errors


def validate_profile_jsonl(path) -> list[str]:
    """Schema-check one profile JSONL file; returns error messages.

    An empty list means the file is valid.  Checked: every line parses as
    a JSON object with a known ``record`` kind; exactly one ``meta`` line
    comes first; launch/aggregate records carry the full counter field
    set with ratios in range; serve ``request`` records carry tenant /
    graph / latency-term fields (and ``slo`` summaries valid
    percentiles); causal-trace ``span`` records (those with a
    ``trace_id``) pass per-span field checks plus the cross-line
    linkage/exact-sum checks of :func:`_validate_trace_linkage`; at
    least one launch, aggregate, request, metric, or trace span exists.
    """
    path = Path(path)
    errors: list[str] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    if not lines:
        return [f"{path}: empty file"]
    n_counter_records = 0
    n_request_records = 0
    n_metric_records = 0
    trace_spans: list[tuple[str, dict]] = []
    for i, line in enumerate(lines, start=1):
        where = f"{path}:{i}"
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: invalid JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            errors.append(f"{where}: line is not a JSON object")
            continue
        kind = obj.get("record")
        if kind not in _RECORD_KINDS:
            errors.append(f"{where}: unknown record kind {kind!r}")
            continue
        if i == 1 and kind != "meta":
            errors.append(f"{where}: first record must be 'meta'")
        if kind in ("launch", "aggregate"):
            n_counter_records += 1
            errors.extend(_validate_counter_fields(obj, where))
        elif kind == "span":
            for field in ("name", "path", "time_s"):
                if field not in obj:
                    errors.append(f"{where}: span missing {field!r}")
            if "trace_id" in obj:
                trace_spans.append((where, obj))
                errors.extend(_validate_trace_span_fields(obj, where))
        elif kind == "metrics":
            if not isinstance(obj.get("metrics"), dict):
                errors.append(f"{where}: metrics record missing 'metrics'")
        elif kind in ("attribution", "delta"):
            terms = obj.get("terms")
            if not isinstance(terms, dict) or not all(
                isinstance(v, (int, float)) for v in terms.values()
            ):
                errors.append(f"{where}: {kind} record needs numeric 'terms'")
        elif kind == "request":
            n_request_records += 1
            errors.extend(_validate_request_fields(obj, where))
        elif kind == "slo":
            errors.extend(_validate_slo_fields(obj, where))
        elif kind == "metric":
            n_metric_records += 1
            errors.extend(_validate_metric_fields(obj, where))
        elif kind == "alert":
            errors.extend(_validate_alert_fields(obj, where))
        elif kind == "flightrec":
            errors.extend(_validate_flightrec_fields(obj, where))
    errors.extend(_validate_trace_linkage(trace_spans))
    if n_counter_records == 0 and n_request_records == 0 \
            and n_metric_records == 0 and not trace_spans:
        errors.append(
            f"{path}: no launch/aggregate/request/metric/trace records"
        )
    return errors
