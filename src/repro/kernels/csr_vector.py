"""Vector-CSR kernel: a thread-gang per row (cuSPARSE/CUSP style).

All threads of a gang cooperatively process one row, with the gang size
set to "a perfect power of two close to μ, the average number of non-zeros
per row" (Section III-A), clamped to [2, 32].  Accesses to the row segment
are coalesced; an intra-warp shuffle reduction combines partials.

The weakness ACSR attacks is still present: rows much shorter than the
gang waste lanes, and a warp still runs as long as its *longest* row —
for power-law matrices the tail row dominates its whole warp.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..gpu.device import DeviceSpec
from ..gpu.kernel import KernelWork
from .common import gang_row_work


def gang_size_for(mu: float) -> int:
    """The power of two nearest the mean row length, clamped to [2, 32]."""
    if mu <= 0:
        return 2
    candidates = [2, 4, 8, 16, 32]
    return min(candidates, key=lambda v: abs(v - mu))


def execute(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Numerical result of the vector-CSR kernel (exact SpMV)."""
    return csr.matvec(x)


def work(
    csr: CSRMatrix,
    device: DeviceSpec,
    vector_size: int | None = None,
    k: int = 1,
) -> KernelWork:
    """Cost model for the vector-CSR launch (``k`` = vector-block width)."""
    v = vector_size if vector_size is not None else gang_size_for(csr.mu)
    return gang_row_work(
        f"csr-vector/{v}",
        csr.nnz_per_row,
        vector_size=v,
        device=device,
        n_cols=csr.n_cols,
        precision=csr.precision,
        profile=csr.gather_profile,
        coalesced=True,
        k=k,
    )


def spmv(
    csr: CSRMatrix,
    x: np.ndarray,
    device: DeviceSpec,
    vector_size: int | None = None,
) -> tuple[np.ndarray, KernelWork]:
    """Execute and cost in one call."""
    return execute(csr, x), work(csr, device, vector_size)
