"""Device kernels: numeric executors + warp-level cost models.

One module per kernel family, mirroring the CUDA kernels of the paper and
its comparison libraries:

* :mod:`~repro.kernels.csr_scalar` / :mod:`~repro.kernels.csr_vector` —
  the CSR baselines (cuSPARSE/CUSP style);
* :mod:`~repro.kernels.coo_segmented` / :mod:`~repro.kernels.ell_kernel` /
  :mod:`~repro.kernels.hyb_kernel` — the CUSP HYB pipeline;
* :mod:`~repro.kernels.acsr_bin` / :mod:`~repro.kernels.acsr_dp` — the
  paper's Algorithms 2–4;
* :mod:`~repro.kernels.brc_kernel` / :mod:`~repro.kernels.bccoo_kernel` /
  :mod:`~repro.kernels.tcoo_kernel` — the research comparators;
* :mod:`~repro.kernels.update_kernel` — the Section VII dynamic-graph
  CSR editor.
"""

from . import (
    acsr_bin,
    acsr_dp,
    bccoo_kernel,
    brc_kernel,
    common,
    coo_segmented,
    csr_scalar,
    csr_vector,
    ell_kernel,
    hyb_kernel,
    tcoo_kernel,
    update_kernel,
)

__all__ = [
    "acsr_bin",
    "acsr_dp",
    "bccoo_kernel",
    "brc_kernel",
    "common",
    "coo_segmented",
    "csr_scalar",
    "csr_vector",
    "ell_kernel",
    "hyb_kernel",
    "tcoo_kernel",
    "update_kernel",
]
