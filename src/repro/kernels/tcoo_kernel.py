"""TCOO kernel: tile-COO SpMV (Yang et al. [28]).

TCOO partitions the matrix into column tiles sized so each tile's slice of
``x`` fits the texture cache, giving near-perfect gather hit rates at the
cost of per-element row+col indices and a cross-tile accumulation pass.
The best tile count is found by exhaustive search (Section V), which is
where its ~3k-SpMV preprocessing bill comes from.
"""

from __future__ import annotations

from ..gpu.device import DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.memory import GatherProfile
from .common import elementwise_work

#: Gather hit rate inside a tile whose x-slice fits the texture cache.
TILE_HIT_RATE = 0.97


def work(
    nnz: int,
    n_rows: int,
    n_tiles: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    k: int = 1,
) -> KernelWork:
    """Cost model for one tiled-COO SpMV (all tiles, one launch).

    More tiles improve locality but re-touch ``y`` once per tile; the
    extra accumulation traffic is charged per tile.
    """
    if n_tiles < 1:
        raise ValueError("need at least one tile")
    base = elementwise_work(
        f"tcoo/{n_tiles}t",
        total_elements=nnz,
        rows_spanned=n_rows * n_tiles,
        device=device,
        n_cols=n_cols,
        precision=precision,
        profile=profile,
        index_bytes_per_elem=8.0,
        reduction=True,
        hit_rate_override=TILE_HIT_RATE if n_tiles > 1 else None,
        k=k,
    )
    return base


def tile_x_bytes(n_cols: int, n_tiles: int, precision: Precision) -> float:
    """Bytes of the ``x`` slice one tile gathers from."""
    if n_tiles < 1:
        raise ValueError("need at least one tile")
    return n_cols / n_tiles * precision.value_bytes
