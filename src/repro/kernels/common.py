"""Shared kernel cost-model machinery.

Every SpMV kernel in ``repro.kernels`` reduces to a handful of warp-level
patterns; this module holds the instruction-count constants and the
traffic builders they share.  The constants are per *warp-instruction
slot* and were chosen once, globally — no per-experiment tuning — so the
relative performance of kernels is an emergent property of their access
patterns, not of fitted constants.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import Precision, WARP_SIZE, DeviceSpec
from ..gpu.kernel import CounterHints, KernelWork, LaunchConfig
from ..gpu.memory import (
    SECTOR_BYTES,
    GatherProfile,
    block_gather_dram_bytes,
    coalesced_bytes,
    gather_dram_bytes,
    scattered_bytes,
    texture_hit_rate,
)
from ..gpu.warp import (
    compress_gangs,
    pack_rows_into_warps,
    shuffle_reduction_steps,
)

#: Warp-instructions per SIMT inner-loop iteration of an SpMV kernel
#: (value load, column load, texture fetch, FMA, index update, branch).
INST_PER_ITER = 6.0

#: One-time per-row instructions (row_off loads, bounds checks, y write).
ROW_SETUP_INSTS = 8.0

#: Instructions per shuffle reduction step.
SHUFFLE_INST = 1.0

#: Extra serialised instructions charged per atomic update.
ATOMIC_INSTS = 12.0

#: Extra warp-instructions per inner-loop iteration *per additional
#: right-hand-side vector* in the batched SpMM path: the column index and
#: matrix value are already in registers, so each extra vector costs only
#: its gather and its FMA.
INST_PER_EXTRA_VEC = 2.0

#: Default CUDA block size used by every kernel's launch geometry.
BLOCK_THREADS = 128


def _spmv_useful_bytes(
    nnz: float,
    n_rows: float,
    *,
    value_bytes: int,
    index_bytes_per_elem: float,
    profile: GatherProfile,
    k: int,
) -> float:
    """Ideal DRAM payload of one SpMV/SpMM launch (for coalescing ratios).

    Each matrix element moves once (value + index), each *distinct* ``x``
    entry (``nnz / reuse``) moves once per vector of the block, each
    output row writes ``k`` values, and the row-offset array streams once.
    Anything a kernel moves beyond this — wasted sector fractions, texture
    misses re-fetching hot entries, ELL padding — is coalescing loss.
    """
    distinct_x = nnz / profile.reuse
    return (
        nnz * (value_bytes + index_bytes_per_elem)
        + distinct_x * value_bytes * k
        + n_rows * value_bytes * k
        + (n_rows + 1.0) * 4.0
    )


def x_hit_rate(
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    k: int = 1,
) -> float:
    """Texture hit rate for gathering the input vector(s) on ``device``.

    For a batched block of ``k`` vectors the working set grows to
    ``n_cols * k`` values, but the column-locality :class:`GatherProfile`
    is *reused* across the block — the access pattern over rows of ``X``
    is exactly the column-index stream of the matrix, whatever ``k`` is.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return texture_hit_rate(
        device, float(n_cols) * precision.value_bytes * k, profile
    )


def launch_for_threads(total_threads: int) -> LaunchConfig:
    """Standard 128-thread-block launch covering ``total_threads``."""
    blocks = max(1, -(-total_threads // BLOCK_THREADS))
    return LaunchConfig(grid_blocks=blocks, threads_per_block=BLOCK_THREADS)


def gang_row_work(
    name: str,
    nnz_per_row: np.ndarray,
    vector_size: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    coalesced: bool = True,
    indirect_rows: bool = False,
    row_density: float = 1.0,
    sector_sharing: float = 1.0,
    flops: float | None = None,
    compress: bool = True,
    k: int = 1,
) -> KernelWork:
    """Cost of the *thread-gang per row* pattern.

    Covers CSR-scalar (``vector_size=1``, ``coalesced=False``), CSR-vector,
    and the ACSR bin-specific kernels (``coalesced=True``).

    **Matrix traffic (coalesced path).**  Gangs read contiguous row
    segments, so a kernel that visits rows in storage order *streams* the
    values/col_idx arrays: traffic is the exact byte span of the rows it
    touches, plus boundary sectors where a touched row abuts an untouched
    one.  ``row_density`` is the fraction of all rows this kernel covers
    (1.0 for CSR kernels; ``bin_rows / n_rows`` for an ACSR bin): the
    denser the coverage, the fewer boundary sectors are wasted.

    **Matrix traffic (uncoalesced path).**  CSR-scalar's lanes walk 32
    distant rows in lockstep, thrashing sectors: every element costs a
    sector from each of the two arrays, attenuated by ``sector_sharing``.

    ``indirect_rows`` models kernels that fetch their row ids through an
    indirection array (ACSR's ``BIN#N_Rows``): the row-offset loads and the
    ``y`` writes become scattered, and the indirection array itself is
    streamed.

    With ``compress=True`` (the default) identical warp shapes are folded
    into weighted entries (:func:`repro.gpu.warp.compress_gangs`), so the
    returned work has one entry per *distinct* shape instead of one per
    warp — timing-identical to the dense form, but the simulator's cost
    scales with bin diversity rather than matrix size.

    ``k > 1`` widens the per-row gang to a block of ``k`` right-hand-side
    vectors (SpMM): matrix traffic (values/col_idx/row_off) is charged
    once, but each iteration gains ``INST_PER_EXTRA_VEC`` instructions
    per extra vector, each gather fetches the sectors covering
    ``X[col, 0:k]``, and the ``y`` write widens to ``k`` values per row.
    ``k == 1`` is byte-identical to the single-vector model.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0.0 < sector_sharing <= 1.0:
        raise ValueError("sector_sharing must be in (0, 1]")
    if not 0.0 < row_density <= 1.0:
        raise ValueError("row_density must be in (0, 1]")
    nnz_per_row = np.asarray(nnz_per_row, dtype=np.int64)
    gang = pack_rows_into_warps(nnz_per_row, vector_size)
    if compress:
        gang = compress_gangs(gang)
    vb = precision.value_bytes
    n_warps = gang.n_warps
    if n_warps == 0:
        return KernelWork.empty(name, precision)

    # Row setup executes once per row-gang; when several rows share a warp
    # the setups serialise (different lanes, same issue slots), so charge
    # one setup per row covered by the warp.  The shuffle reduction runs
    # once per warp (all gangs reduce in lockstep).
    steps = shuffle_reduction_steps(min(vector_size, WARP_SIZE))
    compute = (
        gang.warp_iters.astype(np.float64) * INST_PER_ITER
        + gang.warp_rows.astype(np.float64) * ROW_SETUP_INSTS
        + steps * SHUFFLE_INST * np.minimum(gang.warp_rows, 1)
    )
    if k > 1:
        # Each extra vector adds a gather + FMA per iteration, one extra
        # accumulator init/store per row, and one more shuffle-reduction
        # pass per warp (one reduction per vector of the block).
        compute = compute + (k - 1) * (
            gang.warp_iters.astype(np.float64) * INST_PER_EXTRA_VEC
            + gang.warp_rows.astype(np.float64) * 1.0
            + steps * SHUFFLE_INST * np.minimum(gang.warp_rows, 1)
        )

    hit = x_hit_rate(device, n_cols, precision, profile, k=k)
    gather = block_gather_dram_bytes(gang.warp_nnz, vb, hit, k=k)
    if coalesced:
        # Two traffic floors apply simultaneously:
        # (1) byte span — the rows' data must move at least once;
        # (2) transaction granularity — a gang-iteration's load costs at
        #     least one 32-byte sector *unless* neighbouring gangs' row
        #     segments merge into the same sector.  Merging happens when
        #     gangs are small (several per warp instruction) AND the rows
        #     they cover are adjacent in storage (``row_density``).  A
        #     warp-per-row kernel (cuSPARSE csrmv) walking 3-nnz rows
        #     pays a full sector per array per row; ACSR's bin-1 kernel
        #     over a dense run of such rows streams them.
        # Plus a boundary charge where a touched row abuts an untouched one.
        nnzf = gang.warp_nnz.astype(np.float64)
        itersf = gang.useful_iters.astype(np.float64)
        gang_frac = min(vector_size, WARP_SIZE) / WARP_SIZE
        floor = SECTOR_BYTES * (
            gang_frac + (1.0 - gang_frac) * (1.0 - row_density)
        )
        boundary = (1.0 - row_density) * 2 * SECTOR_BYTES
        matrix = (
            np.maximum(nnzf * vb, itersf * floor)
            + np.maximum(nnzf * 4, itersf * floor)
            + gang.warp_rows.astype(np.float64) * boundary
        )
    else:
        # Scalar pathology: every element load costs a sector, twice
        # (values array and col_idx array), attenuated by sector sharing.
        matrix = scattered_bytes(gang.warp_nnz) * 2.0 * sector_sharing
    if indirect_rows:
        # BIN_Rows stream (coalesced) + row_off pairs + y writes through the
        # indirection: per-access sector cost shrinks as the bin's rows
        # densify (8 int32 entries share a sector).
        per_access = SECTOR_BYTES / max(1.0, row_density * 8.0)
        if k == 1:
            row_meta = (
                coalesced_bytes(gang.warp_rows * 4)
                + gang.warp_rows.astype(np.float64) * 2.0 * per_access
            )
        else:
            # Row-off pair is one access; the y write covers k consecutive
            # values of the output block, so it spans ceil(k*vb/32) sectors.
            y_accesses = float(np.ceil(k * vb / SECTOR_BYTES))
            row_meta = (
                coalesced_bytes(gang.warp_rows * 4)
                + gang.warp_rows.astype(np.float64)
                * (1.0 + y_accesses)
                * per_access
            )
    else:
        if k == 1:
            row_meta = coalesced_bytes(
                (gang.warp_rows + 1) * 4
            ) + coalesced_bytes(gang.warp_rows * vb)
        else:
            row_meta = coalesced_bytes(
                (gang.warp_rows + 1) * 4
            ) + coalesced_bytes(gang.warp_rows * (vb * k))
    dram = matrix + gather + row_meta

    total_nnz = float(nnz_per_row.sum())
    return KernelWork(
        name=name,
        compute_insts=compute,
        dram_bytes=np.asarray(dram, dtype=np.float64),
        # Each iteration's critical chain is two dependent loads: col_idx,
        # then x[col] — the gather cannot issue before its index arrives.
        mem_ops=gang.warp_iters.astype(np.float64) * 2.0,
        flops=2.0 * total_nnz * k if flops is None else flops,
        precision=precision,
        launch=launch_for_threads(
            int(nnz_per_row.shape[0]) * min(vector_size, WARP_SIZE)
            if vector_size <= WARP_SIZE
            else n_warps * WARP_SIZE
        ),
        warp_weights=(
            gang.weights.astype(np.float64)
            if gang.weights is not None
            else None
        ),
        k=k,
        hints=CounterHints(
            tex_hit_rate=hit,
            useful_bytes=_spmv_useful_bytes(
                total_nnz,
                float(nnz_per_row.shape[0]),
                value_bytes=vb,
                index_bytes_per_elem=4.0,
                profile=profile,
                k=k,
            ),
            tex_miss_bytes=float(
                np.sum(
                    np.asarray(gather, dtype=np.float64)
                    * (
                        gang.weights.astype(np.float64)
                        if gang.weights is not None
                        else 1.0
                    )
                )
            ),
        ),
    )


def elementwise_work(
    name: str,
    total_elements: int,
    rows_spanned: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    index_bytes_per_elem: float = 8.0,
    reduction: bool = True,
    hit_rate_override: float | None = None,
    flops: float | None = None,
    k: int = 1,
) -> KernelWork:
    """Cost of the *thread per element* pattern (COO-family kernels).

    ``index_bytes_per_elem`` is the contiguous index traffic per element
    (plain COO reads row + col = 8 bytes; compressed layouts such as BCCOO
    read far less).  Segmented reduction adds shuffle steps per warp plus
    one atomic per row *boundary* crossed.

    ``k > 1`` batches the launch over a block of ``k`` vectors: index
    traffic is charged once, but each element gains per-vector gather/FMA
    instructions, the segmented reduction repeats per vector, and each
    gather/atomic touches the sectors covering a ``k``-wide block row.
    ``k == 1`` is byte-identical to the single-vector model.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if total_elements < 0:
        raise ValueError("element count must be non-negative")
    if total_elements == 0:
        return KernelWork.empty(name, precision)
    vb = precision.value_bytes
    n_warps = -(-total_elements // WARP_SIZE)
    rem = total_elements % WARP_SIZE
    # All full warps are identical: two weighted entries describe the
    # whole launch, whatever its size.
    if rem and n_warps > 1:
        counts = np.array([float(WARP_SIZE), float(rem)])
        weights = np.array([float(n_warps - 1), 1.0])
    elif rem:
        counts = np.array([float(rem)])
        weights = np.array([1.0])
    else:
        counts = np.array([float(WARP_SIZE)])
        weights = np.array([float(n_warps)])

    # One SIMT iteration per warp over its 32 elements, plus the segmented
    # scan (5 shuffle steps) and the expected atomics: a warp emits one
    # carry atomic, plus extra atomics when many row boundaries fall inside
    # it.
    boundaries_per_warp = min(
        float(WARP_SIZE), rows_spanned / max(1, n_warps) + 1.0
    )
    compute = (
        counts / WARP_SIZE * INST_PER_ITER
        + (5 * SHUFFLE_INST if reduction else 0.0)
        + (ATOMIC_INSTS * boundaries_per_warp if reduction else 0.0)
    )
    if k > 1:
        compute = compute + (k - 1) * (
            counts / WARP_SIZE * INST_PER_EXTRA_VEC
            + (5 * SHUFFLE_INST if reduction else 0.0)
            + (ATOMIC_INSTS * boundaries_per_warp if reduction else 0.0)
        )

    hit = (
        hit_rate_override
        if hit_rate_override is not None
        else x_hit_rate(device, n_cols, precision, profile, k=k)
    )
    matrix = coalesced_bytes(counts * vb) + coalesced_bytes(
        counts * index_bytes_per_elem
    )
    gather = block_gather_dram_bytes(counts, vb, hit, k=k)
    atomic_traffic = (
        scattered_bytes(np.full(counts.shape[0], boundaries_per_warp))
        if reduction
        else 0.0
    )
    if reduction and k > 1:
        # Each carry atomic updates k consecutive outputs of the block.
        atomic_traffic = atomic_traffic * float(
            np.ceil(k * vb / SECTOR_BYTES)
        )
    dram = matrix + gather + atomic_traffic

    return KernelWork(
        name=name,
        compute_insts=np.asarray(compute, dtype=np.float64),
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=np.ceil(counts / WARP_SIZE) * 2.0,
        flops=2.0 * float(total_elements) * k if flops is None else flops,
        precision=precision,
        launch=launch_for_threads(total_elements),
        warp_weights=weights,
        k=k,
        hints=CounterHints(
            tex_hit_rate=hit,
            useful_bytes=_spmv_useful_bytes(
                float(total_elements),
                float(rows_spanned),
                value_bytes=vb,
                index_bytes_per_elem=index_bytes_per_elem,
                profile=profile,
                k=k,
            ),
            tex_miss_bytes=float(
                np.sum(np.asarray(gather, dtype=np.float64) * weights)
            ),
        ),
    )


def ell_work(
    name: str,
    n_rows: int,
    width: int,
    real_nnz: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    scattered_y: bool = False,
    k: int = 1,
) -> KernelWork:
    """Cost of a column-major ELL kernel of ``width`` columns.

    Fully coalesced (the point of ELL) but reads *all* padding: the
    per-warp traffic is ``width`` full iterations whether the rows need
    them or not.  ``scattered_y`` models permuted-output variants (BRC).

    ``k > 1`` batches the launch over a block of ``k`` vectors: the
    padded matrix stream is charged once, gathers widen to the block row,
    and the ``y`` write grows ``k``-fold.  ``k == 1`` is byte-identical
    to the single-vector model.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if n_rows < 0 or width < 0 or real_nnz < 0:
        raise ValueError("sizes must be non-negative")
    if n_rows == 0 or width == 0:
        return KernelWork.empty(name, precision)
    vb = precision.value_bytes
    n_warps = -(-n_rows // WARP_SIZE)
    # Every warp of a column-major ELL launch is identical (full ``width``
    # iterations, padding included), so ONE weighted entry describes the
    # whole launch, whatever the matrix size.
    compute = np.full(
        1, width * INST_PER_ITER + ROW_SETUP_INSTS, dtype=np.float64
    )
    if k > 1:
        compute = compute + (k - 1) * (width * INST_PER_EXTRA_VEC + 1.0)
    per_iter_bytes = coalesced_bytes(WARP_SIZE * vb) + coalesced_bytes(
        WARP_SIZE * 4
    )
    matrix = np.full(1, width * per_iter_bytes, dtype=np.float64)
    hit = x_hit_rate(device, n_cols, precision, profile, k=k)
    gathers_per_warp = real_nnz / n_warps
    gather = block_gather_dram_bytes(np.full(1, gathers_per_warp), vb, hit, k=k)
    if scattered_y:
        # Permuted output (BRC): writes are scattered, but rows grouped
        # into a block were adjacent in sorted order, so roughly half of
        # each sector is co-written by blockmates.
        y_bytes = scattered_bytes(np.full(1, float(WARP_SIZE))) * 0.5
        if k > 1:
            y_bytes = y_bytes * float(np.ceil(k * vb / SECTOR_BYTES))
    elif k == 1:
        y_bytes = coalesced_bytes(np.full(1, WARP_SIZE * vb))
    else:
        y_bytes = coalesced_bytes(np.full(1, WARP_SIZE * vb * k))
    dram = matrix + gather + y_bytes
    return KernelWork(
        name=name,
        compute_insts=compute,
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=np.full(1, float(width) * 2.0, dtype=np.float64),
        flops=2.0 * float(real_nnz) * k,
        precision=precision,
        launch=launch_for_threads(n_rows),
        warp_weights=np.full(1, float(n_warps)),
        k=k,
        # Useful payload excludes the zero padding ELL streams, so the
        # coalescing ratio directly exposes the padding waste.
        hints=CounterHints(
            tex_hit_rate=hit,
            useful_bytes=_spmv_useful_bytes(
                float(real_nnz),
                float(n_rows),
                value_bytes=vb,
                index_bytes_per_elem=4.0,
                profile=profile,
                k=k,
            ),
            tex_miss_bytes=float(
                np.sum(np.asarray(gather, dtype=np.float64)) * float(n_warps)
            ),
        ),
    )
