"""ELLPACK kernel: one thread per row over a zero-padded dense slab.

ELL stores the matrix as a dense ``n_rows x width`` array in column-major
order, so a warp's 32 lanes always read 32 consecutive entries — perfect
coalescing, zero divergence.  The price is padding: every row is read out
to ``width`` whether it has data there or not, which is the "redundant
computation and data transfer" cost the paper charges against
padding-based formats (Section I).
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.memory import GatherProfile
from .common import ell_work

#: Column index marking a padding slot.
PAD_COL = -1


def execute(
    ell_cols: np.ndarray,
    ell_vals: np.ndarray,
    x: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Numerical ELL SpMV over ``(n_rows, width)`` arrays.

    Padding slots carry ``PAD_COL`` in ``ell_cols`` and are skipped, as in
    the CUSP kernel's bounds check.
    """
    if ell_cols.shape != ell_vals.shape:
        raise ValueError("ELL column and value slabs must match in shape")
    n_rows = ell_cols.shape[0]
    y = out if out is not None else np.zeros(n_rows, dtype=x.dtype)
    if ell_cols.size:
        valid = ell_cols != PAD_COL
        safe_cols = np.where(valid, ell_cols, 0)
        prod = np.where(
            valid,
            ell_vals.astype(np.float64, copy=False)
            * x.astype(np.float64, copy=False)[safe_cols],
            0.0,
        )
        y += prod.sum(axis=1).astype(y.dtype, copy=False)
    return y


def execute_many(
    ell_cols: np.ndarray,
    ell_vals: np.ndarray,
    X: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Batched ELL SpMM over a ``(n_cols, k)`` vector block.

    The gather, mask, and product run as one ``(n_rows, width, k)``
    array program; only the width reduction loops over columns, on a
    contiguous copy of each column's slab.  That keeps every column's
    pairwise summation tree identical to :func:`execute`'s 2-D
    ``prod.sum(axis=1)`` (a direct 3-D ``sum(axis=1)`` blocks its
    pairwise reduction differently and drifts at the ulp level), so the
    result is bitwise equal column by column.
    """
    if ell_cols.shape != ell_vals.shape:
        raise ValueError("ELL column and value slabs must match in shape")
    n_rows = ell_cols.shape[0]
    k = X.shape[1]
    Y = out if out is not None else np.zeros((n_rows, k), dtype=X.dtype)
    if ell_cols.size:
        valid = ell_cols != PAD_COL
        safe_cols = np.where(valid, ell_cols, 0)
        prod = np.where(
            valid[:, :, None],
            ell_vals.astype(np.float64, copy=False)[:, :, None]
            * X.astype(np.float64, copy=False)[safe_cols, :],
            0.0,
        )
        acc = np.empty((n_rows, k), dtype=np.float64)
        for j in range(k):
            acc[:, j] = np.ascontiguousarray(prod[:, :, j]).sum(axis=1)
        Y += acc.astype(Y.dtype, copy=False)
    return Y


def work(
    n_rows: int,
    width: int,
    real_nnz: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    name: str = "ell",
    scattered_y: bool = False,
    k: int = 1,
) -> KernelWork:
    """Cost model for the ELL launch (``k`` = vector-block width)."""
    return ell_work(
        name,
        n_rows=n_rows,
        width=width,
        real_nnz=real_nnz,
        device=device,
        n_cols=n_cols,
        precision=precision,
        profile=profile,
        scattered_y=scattered_y,
        k=k,
    )
