"""ACSR dynamic-parallelism kernels (Algorithms 3 and 4).

For the long-tail bins (group G1), a *parent* kernel runs one control
thread per long row; each control thread launches a row-specific *child*
grid of ``nnz / ThreadLoad`` threads over its own stream.  Children stream
the row with coalesced accesses, reduce intra-warp with shuffles, and
combine across warps with one atomic per warp.

Parent threads "are only used for control purposes and do not perform any
actual computations" (Section III-B), so the parent work is pure
instruction overhead.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..gpu.device import DeviceSpec, Precision, WARP_SIZE
from ..gpu.kernel import CounterHints, KernelWork
from ..gpu.memory import (
    SECTOR_BYTES,
    block_gather_dram_bytes,
    coalesced_bytes,
    scattered_bytes,
)
from .common import (
    ATOMIC_INSTS,
    INST_PER_EXTRA_VEC,
    INST_PER_ITER,
    ROW_SETUP_INSTS,
    SHUFFLE_INST,
    _spmv_useful_bytes,
    launch_for_threads,
    x_hit_rate,
)

#: Instructions a parent control thread spends preparing + launching one
#: child grid (argument marshalling, stream setup, launch call).
PARENT_CONTROL_INSTS = 40.0


def execute(
    csr: CSRMatrix, rows: np.ndarray, x: np.ndarray, y: np.ndarray
) -> None:
    """Numerically compute the G1 rows' results in place.

    Each child grid computes one full row dot-product; arithmetic is
    identical to the bin path, so reuse the same gather formulation.
    """
    from .acsr_bin import execute as bin_execute

    bin_execute(csr, rows, x, y)


def parent_work(n_children: int, precision: Precision) -> KernelWork:
    """Cost of the parent (control-only) grid for ``n_children`` rows."""
    if n_children < 0:
        raise ValueError("child count must be non-negative")
    if n_children == 0:
        return KernelWork.empty("acsr-dp-parent", precision)
    n_warps = -(-n_children // WARP_SIZE)
    rem = n_children % WARP_SIZE
    # All full warps are identical: two weighted entries (full + partial
    # trailing warp) describe the whole control grid.
    if rem and n_warps > 1:
        counts = np.array([float(WARP_SIZE), float(rem)])
        weights = np.array([float(n_warps - 1), 1.0])
    elif rem:
        counts = np.array([float(rem)])
        weights = np.array([1.0])
    else:
        counts = np.array([float(WARP_SIZE)])
        weights = np.array([float(n_warps)])
    # Launch calls serialise within a warp (each lane launches its own
    # grid), so charge per-thread control instructions.
    compute = counts * PARENT_CONTROL_INSTS
    # G1_Row list read + row_off pair per child.
    dram = coalesced_bytes(counts * 4) + scattered_bytes(counts)
    return KernelWork(
        name="acsr-dp-parent",
        compute_insts=compute,
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=np.ones(counts.shape[0], dtype=np.float64),
        flops=0.0,
        precision=precision,
        launch=launch_for_threads(n_children),
        warp_weights=weights,
        # Control metadata only: one row id + one row_off pair per child.
        hints=CounterHints(useful_bytes=float(n_children) * 12.0),
    )


def child_work(
    csr: CSRMatrix,
    row: int,
    thread_load: int,
    device: DeviceSpec,
    k: int = 1,
) -> KernelWork:
    """Cost of one row-specific child grid (Algorithm 4).

    The grid has ``ceil(nnz / thread_load)`` threads; every thread handles
    ``thread_load`` elements with a grid-stride loop, so each warp performs
    ``thread_load`` coalesced iterations, then an intra-warp shuffle
    reduction and one atomic for the inter-warp combine.

    ``k > 1`` widens the child over a block of ``k`` vectors: the row's
    values/col_idx stream once, but each iteration gains per-vector
    gather/FMA instructions, the shuffle reduction and atomic combine
    repeat per vector, and gathers/atomics fetch block-row sectors.
    ``k == 1`` is byte-identical to the single-vector model.
    """
    if thread_load < 1:
        raise ValueError("thread_load must be >= 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    nnz = int(csr.nnz_per_row[row])
    precision = csr.precision
    if nnz == 0:
        return KernelWork.empty(f"acsr-dp-child-r{row}", precision)
    vb = precision.value_bytes
    n_threads = max(1, -(-nnz // thread_load))
    n_warps = -(-n_threads // WARP_SIZE)
    # Elements per warp: the row split evenly across warps, so every warp
    # of the child grid is identical — one weighted entry covers them all.
    elems = np.full(1, nnz / n_warps, dtype=np.float64)
    iters = np.ceil(elems / WARP_SIZE)
    compute = (
        iters * INST_PER_ITER
        + ROW_SETUP_INSTS
        + 5 * SHUFFLE_INST
        + ATOMIC_INSTS
    )
    if k > 1:
        compute = compute + (k - 1) * (
            iters * INST_PER_EXTRA_VEC + 5 * SHUFFLE_INST + ATOMIC_INSTS
        )
    hit = x_hit_rate(device, csr.n_cols, precision, csr.gather_profile, k=k)
    matrix = coalesced_bytes(elems * vb) + coalesced_bytes(elems * 4)
    gather = block_gather_dram_bytes(elems, vb, hit, k=k)
    atomic = scattered_bytes(np.ones(1))
    if k > 1:
        atomic = atomic * float(np.ceil(k * vb / SECTOR_BYTES))
    dram = matrix + gather + atomic
    return KernelWork(
        name=f"acsr-dp-child-r{row}",
        compute_insts=np.asarray(compute, dtype=np.float64),
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=iters * 2.0,  # col load -> dependent x gather per iteration
        flops=2.0 * nnz * k,
        precision=precision,
        launch=launch_for_threads(n_threads),
        warp_weights=np.full(1, float(n_warps)),
        k=k,
        hints=CounterHints(
            tex_hit_rate=hit,
            useful_bytes=_spmv_useful_bytes(
                float(nnz),
                1.0,
                value_bytes=vb,
                index_bytes_per_elem=4.0,
                profile=csr.gather_profile,
                k=k,
            ),
        ),
    )


def children_works(
    csr: CSRMatrix,
    rows: np.ndarray,
    thread_load: int,
    device: DeviceSpec,
    k: int = 1,
) -> list[KernelWork]:
    """One child grid per G1 row."""
    return [
        child_work(csr, int(r), thread_load, device, k=k)
        for r in np.asarray(rows)
    ]


def children_batch_work(
    csr: CSRMatrix,
    rows: np.ndarray,
    thread_load: int,
    device: DeviceSpec,
    k: int = 1,
) -> KernelWork:
    """Every G1 child grid as one multi-entry work (one entry per row).

    The array-program form of :func:`children_works`: each per-warp
    column is exactly the concatenation of the per-row works' single
    entries (empty rows contribute nothing, matching
    :data:`KernelWork.empty`'s zero-length arrays), each expression uses
    the same operation order as :func:`child_work`, and the total flops
    are an integer-valued sum — so ``merge_concurrent([parent, batch])``
    is entry-for-entry byte-identical to merging the per-row list while
    skipping ~1000 Python-level work constructions per evaluation.
    """
    if thread_load < 1:
        raise ValueError("thread_load must be >= 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    precision = csr.precision
    nnz_int = csr.nnz_per_row[np.asarray(rows)].astype(np.int64)
    nnz_int = nnz_int[nnz_int > 0]
    if nnz_int.shape[0] == 0:
        return KernelWork.empty("acsr-dp-children", precision)
    vb = precision.value_bytes
    n_threads = np.maximum(1, -(-nnz_int // thread_load))
    n_warps = -(-n_threads // WARP_SIZE)
    # Same float64 division as the scalar path (both operands are exact).
    elems = nnz_int.astype(np.float64) / n_warps.astype(np.float64)
    iters = np.ceil(elems / WARP_SIZE)
    compute = (
        iters * INST_PER_ITER
        + ROW_SETUP_INSTS
        + 5 * SHUFFLE_INST
        + ATOMIC_INSTS
    )
    if k > 1:
        compute = compute + (k - 1) * (
            iters * INST_PER_EXTRA_VEC + 5 * SHUFFLE_INST + ATOMIC_INSTS
        )
    hit = x_hit_rate(device, csr.n_cols, precision, csr.gather_profile, k=k)
    matrix = coalesced_bytes(elems * vb) + coalesced_bytes(elems * 4)
    gather = block_gather_dram_bytes(elems, vb, hit, k=k)
    atomic = scattered_bytes(np.ones(nnz_int.shape[0]))
    if k > 1:
        atomic = atomic * float(np.ceil(k * vb / SECTOR_BYTES))
    dram = matrix + gather + atomic
    nnz = nnz_int.astype(np.float64)
    return KernelWork(
        name="acsr-dp-children",
        compute_insts=np.asarray(compute, dtype=np.float64),
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=iters * 2.0,
        # Integer-valued per-row flops: the sum is exact in any order.
        flops=float(np.sum(2.0 * nnz * k)),
        precision=precision,
        warp_weights=n_warps.astype(np.float64),
        k=k,
        hints=CounterHints(
            tex_hit_rate=hit,
            useful_bytes=float(
                np.sum(
                    _spmv_useful_bytes(
                        nnz,
                        1.0,
                        value_bytes=vb,
                        index_bytes_per_elem=4.0,
                        profile=csr.gather_profile,
                        k=k,
                    )
                )
            ),
        ),
    )
