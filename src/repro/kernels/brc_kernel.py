"""BRC kernel: blocked row-column SpMV (Ashari et al. [1]).

BRC reorders rows by decreasing length and packs them into blocks whose
rows have similar lengths, each block stored ELL-style with its own width.
Padding is tiny (~1% space overhead, Section V) and warps are balanced,
but the output permutation makes ``y`` writes scattered, and the heavy
preprocessing (a full sort plus data reshuffle) is what Figure 4 charges
it for.
"""

from __future__ import annotations

from ..gpu.device import DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.memory import GatherProfile
from .ell_kernel import work as ell_work_fn


def block_works(
    blocks: list[tuple[int, int, int]],
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    k: int = 1,
) -> list[KernelWork]:
    """Cost of one BRC SpMV: one balanced ELL-style launch per block.

    ``blocks`` lists ``(n_rows, width, real_nnz)`` per block.  Blocks are
    processed by a single fused kernel on hardware; modelling them as
    back-to-back launches only adds launch overheads, so the caller merges
    them when fusing.
    """
    works = []
    for i, (n_rows, width, real_nnz) in enumerate(blocks):
        if n_rows == 0 or width == 0:
            continue
        works.append(
            ell_work_fn(
                n_rows,
                width,
                real_nnz,
                device=device,
                n_cols=n_cols,
                precision=precision,
                profile=profile,
                name=f"brc-block{i}",
                scattered_y=True,
                k=k,
            )
        )
    return works
