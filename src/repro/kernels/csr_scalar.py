"""Scalar-CSR kernel: one thread per row.

The straightforward CSR SpMV (Section II): thread ``i`` walks row ``i``.
Two pathologies make it slow on power-law matrices, both captured by the
cost model:

* **thread divergence** — a warp runs for the *longest* of its 32 rows;
* **uncoalesced access** — each lane streams a different region of the
  values/col_idx arrays, so every load is its own 32-byte sector.

This is the "CSR" baseline of Figure 5 and Figure 6.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix, csr_matvec
from ..gpu.device import DeviceSpec
from ..gpu.kernel import KernelWork
from .common import gang_row_work


def execute(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Numerical result of the scalar-CSR kernel (exact SpMV)."""
    return csr.matvec(x)


def work(csr: CSRMatrix, device: DeviceSpec, k: int = 1) -> KernelWork:
    """Cost model for the scalar-CSR launch (``k`` = vector-block width)."""
    return gang_row_work(
        "csr-scalar",
        csr.nnz_per_row,
        vector_size=1,
        device=device,
        n_cols=csr.n_cols,
        precision=csr.precision,
        profile=csr.gather_profile,
        coalesced=False,
        k=k,
    )


def spmv(csr: CSRMatrix, x: np.ndarray, device: DeviceSpec) -> tuple[np.ndarray, KernelWork]:
    """Execute and cost in one call."""
    return execute(csr, x), work(csr, device)
