"""HYB kernel: ELL slab for the regular part, COO for the overflow.

CUSP's HYB SpMV is two dependent launches — the ELL kernel writes ``y``
and the COO kernel accumulates the long-row overflow on top (Section II,
Figure 1-b).  Both component kernels live in their own modules; this one
composes them.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.memory import GatherProfile
from . import coo_segmented, ell_kernel


def execute(
    ell_cols: np.ndarray,
    ell_vals: np.ndarray,
    coo_rows: np.ndarray,
    coo_cols: np.ndarray,
    coo_vals: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Numerical HYB SpMV: ELL part, then COO accumulation."""
    y = ell_kernel.execute(ell_cols, ell_vals, x)
    return coo_segmented.execute(
        coo_rows, coo_cols, coo_vals, x, n_rows=y.shape[0], out=y
    )


def execute_many(
    ell_cols: np.ndarray,
    ell_vals: np.ndarray,
    coo_rows: np.ndarray,
    coo_cols: np.ndarray,
    coo_vals: np.ndarray,
    X: np.ndarray,
) -> np.ndarray:
    """Batched HYB SpMM: the two component SpMMs in the same order.

    Column-by-column bitwise identical to :func:`execute` because both
    component kernels guarantee it and the accumulation order (ELL
    result first, COO overflow added on top) is unchanged.
    """
    Y = ell_kernel.execute_many(ell_cols, ell_vals, X)
    return coo_segmented.execute_many(
        coo_rows, coo_cols, coo_vals, X, n_rows=Y.shape[0], out=Y
    )


def works(
    n_rows: int,
    ell_width: int,
    ell_real_nnz: int,
    coo_nnz: int,
    coo_rows_spanned: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    k: int = 1,
) -> list[KernelWork]:
    """The two launches of one HYB SpMV (empty parts are skipped)."""
    out: list[KernelWork] = []
    if ell_width > 0 and n_rows > 0:
        out.append(
            ell_kernel.work(
                n_rows,
                ell_width,
                ell_real_nnz,
                device=device,
                n_cols=n_cols,
                precision=precision,
                profile=profile,
                name="hyb-ell",
                k=k,
            )
        )
    if coo_nnz > 0:
        out.append(
            coo_segmented.work(
                coo_nnz,
                coo_rows_spanned,
                device=device,
                n_cols=n_cols,
                precision=precision,
                profile=profile,
                name="hyb-coo",
                k=k,
            )
        )
    return out
