"""COO kernel with segmented reduction (CUSP's ``spmv_coo_flat``).

One thread per non-zero; a warp-level segmented scan accumulates partial
products that belong to the same row, and carries across warp boundaries
are resolved with atomics.  Perfectly load balanced, but it pays
reduction/atomic overhead per warp — the "excessive synchronization
overhead" the paper cites for COO-family formats (Section I).
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.memory import GatherProfile
from .common import elementwise_work


def execute(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    x: np.ndarray,
    n_rows: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Numerical COO SpMV: scatter-add of per-element products.

    ``out`` accumulates in place when provided (the HYB kernel adds the
    COO part on top of the ELL part's result).
    """
    if rows.shape != cols.shape or rows.shape != vals.shape:
        raise ValueError("COO arrays must have equal length")
    y = out if out is not None else np.zeros(n_rows, dtype=x.dtype)
    if rows.size:
        prod = vals.astype(np.float64, copy=False) * x.astype(
            np.float64, copy=False
        )[cols]
        acc = np.bincount(rows, weights=prod, minlength=n_rows)
        y += acc.astype(y.dtype, copy=False)
    return y


def execute_many(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    X: np.ndarray,
    n_rows: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Batched COO SpMM: ``Y = A @ X`` for a ``(n_cols, k)`` block.

    True array-level SpMM — one broadcast product over all ``k``
    columns and a single flattened ``np.bincount`` over ``row * k +
    column`` keys.  Each column of the result is *bitwise identical* to
    :func:`execute` on that column alone: the C-order ravel visits
    element ``(i, j)`` in increasing ``i`` for every fixed ``j``, which
    is exactly the sequential accumulation order of the per-column
    bincount.
    """
    if rows.shape != cols.shape or rows.shape != vals.shape:
        raise ValueError("COO arrays must have equal length")
    k = X.shape[1]
    Y = out if out is not None else np.zeros((n_rows, k), dtype=X.dtype)
    if rows.size:
        prod = vals.astype(np.float64, copy=False)[:, None] * X.astype(
            np.float64, copy=False
        )[cols, :]
        flat = rows.astype(np.int64)[:, None] * k + np.arange(k)
        acc = np.bincount(
            flat.ravel(), weights=prod.ravel(), minlength=n_rows * k
        ).reshape(n_rows, k)
        Y += acc.astype(Y.dtype, copy=False)
    return Y


def work(
    nnz: int,
    n_rows_spanned: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    name: str = "coo-segmented",
    k: int = 1,
) -> KernelWork:
    """Cost model for the segmented-reduction COO launch."""
    return elementwise_work(
        name,
        total_elements=nnz,
        rows_spanned=n_rows_spanned,
        device=device,
        n_cols=n_cols,
        precision=precision,
        profile=profile,
        index_bytes_per_elem=8.0,  # row index + column index
        reduction=True,
        k=k,
    )
