"""ACSR bin-specific SpMV kernel (Algorithm 2).

One kernel launch per non-empty bin in group G2.  Bin ``i`` holds rows
with ``nnz in (2^(i-1), 2^i]`` (bin 1 holds 1–2), and its kernel assigns a
thread-gang of ``2^(i-1)`` lanes (capped at a warp) to each row, so every
row finishes in at most two SIMT iterations — binning turns the power-law
head into perfectly balanced warps.

Rows reach the kernel through the ``BIN#N_Rows`` indirection array built
during the (cheap) preprocessing scan, so row-offset loads and ``y``
writes are scattered; the cost model charges for that.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..gpu.device import DeviceSpec, WARP_SIZE
from ..gpu.kernel import KernelWork
from .common import gang_row_work


def gang_size_for_bin(bin_index: int) -> int:
    """Thread-gang size for a bin: ``2^(i-1)`` lanes, capped at a warp.

    Bin 1 (rows of 1–2 nnz) gets a single thread; the bin covering
    [33..64] gets the full warp (Section III-A).
    """
    if bin_index < 1:
        raise ValueError("bin indices start at 1")
    return min(1 << (bin_index - 1), WARP_SIZE)


def execute(
    csr: CSRMatrix, rows: np.ndarray, x: np.ndarray, y: np.ndarray
) -> None:
    """Numerically compute ``y[rows] = A[rows, :] @ x`` in place.

    The kernel contributes only its bin's rows; the driver composes the
    full result from all bins plus the DP group.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return
    starts = csr.row_off[rows]
    ends = csr.row_off[rows + 1]
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        y[rows] = 0
        return
    # Gather the bin's elements into one flat stream, then prefix-sum per
    # row segment — the vectorised analog of each gang's strided loop.
    flat = np.repeat(starts, lengths) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(lengths) - lengths, lengths)
    )
    prod = csr.values.astype(np.float64, copy=False)[flat] * x.astype(
        np.float64, copy=False
    )[csr.col_idx[flat]]
    csum = np.concatenate([[0.0], np.cumsum(prod)])
    bounds = np.concatenate([[0], np.cumsum(lengths)])
    y[rows] = (csum[bounds[1:]] - csum[bounds[:-1]]).astype(y.dtype, copy=False)


def pooled_work(
    csr: CSRMatrix,
    bins: list[tuple[int, np.ndarray]],
    device: DeviceSpec,
    name: str = "acsr-g2",
    k: int = 1,
) -> KernelWork:
    """Cost model for a *pool* of bin kernels on concurrent streams.

    Issue behaviour (iterations, lanes, reductions) is per-bin, but DRAM
    traffic is charged on the pool's **union** of rows: concurrent bin
    grids share the L2, so a sector fetched for one bin's row serves the
    neighbouring rows processed by other bins.  The union streams the
    touched row spans exactly once, plus one boundary charge per
    contiguous run of rows, plus the indirection arrays and row metadata.

    ``k > 1`` widens each gang over a block of ``k`` right-hand-side
    vectors (SpMM): matrix and indirection traffic is charged once, while
    gathers, ``y`` writes, per-iteration instructions, and flops scale
    with the block.  ``k == 1`` is byte-identical to the SpMV model.
    """
    from .common import x_hit_rate  # local alias for clarity

    if k < 1:
        raise ValueError("k must be >= 1")
    precision = csr.precision
    vb = precision.value_bytes
    nonempty = [(b, np.asarray(r, dtype=np.int64)) for b, r in bins if len(r)]
    if not nonempty:
        return KernelWork.empty(name, precision)

    # Per-warp issue structure, bin by bin.  Binning makes the warps of a
    # bin (near-)identical, so each bin's gang compresses to a handful of
    # weighted entries — the pool stays O(distinct shapes) however many
    # warps the matrix needs.
    from ..gpu.warp import (
        compress_gangs,
        pack_rows_into_warps,
        shuffle_reduction_steps,
    )
    from .common import (
        INST_PER_EXTRA_VEC,
        INST_PER_ITER,
        ROW_SETUP_INSTS,
        SHUFFLE_INST,
    )

    compute_parts = []
    memops_parts = []
    nnz_parts = []
    weight_parts = []
    for b, rows in nonempty:
        gang = compress_gangs(
            pack_rows_into_warps(csr.nnz_per_row[rows], gang_size_for_bin(b))
        )
        steps = shuffle_reduction_steps(min(gang_size_for_bin(b), WARP_SIZE))
        part = (
            gang.warp_iters.astype(np.float64) * INST_PER_ITER
            + gang.warp_rows.astype(np.float64) * ROW_SETUP_INSTS
            + steps * SHUFFLE_INST * np.minimum(gang.warp_rows, 1)
        )
        if k > 1:
            part = part + (k - 1) * (
                gang.warp_iters.astype(np.float64) * INST_PER_EXTRA_VEC
                + gang.warp_rows.astype(np.float64) * 1.0
                + steps * SHUFFLE_INST * np.minimum(gang.warp_rows, 1)
            )
        compute_parts.append(part)
        memops_parts.append(gang.warp_iters.astype(np.float64) * 2.0)
        nnz_parts.append(gang.warp_nnz.astype(np.float64))
        weight_parts.append(gang._weights())
    compute = np.concatenate(compute_parts)
    mem_ops = np.concatenate(memops_parts)
    warp_nnz = np.concatenate(nnz_parts)
    weights = np.concatenate(weight_parts)

    # Union traffic.
    all_rows = np.sort(np.concatenate([r for _, r in nonempty]))
    total_nnz = float(csr.nnz_per_row[all_rows].sum())
    runs = (
        1 + int(np.count_nonzero(np.diff(all_rows) != 1))
        if all_rows.shape[0] > 1
        else 1
    )
    hit = x_hit_rate(device, csr.n_cols, precision, csr.gather_profile, k=k)
    meta_bytes = (
        all_rows.shape[0] * (4 + 2 * 4 + vb * k)  # BIN_Rows + row_off + y
        + runs * 2 * 32.0  # boundary sectors of each contiguous run
    )
    matrix_bytes = total_nnz * (vb + 4)
    miss_sectors = float(np.ceil(k * vb / 32.0)) if k > 1 else 1.0
    gather_bytes = total_nnz * (1.0 - hit) * miss_sectors * 32.0
    total_bytes = matrix_bytes + gather_bytes + meta_bytes
    pool_nnz = float(np.sum(warp_nnz * weights))
    n_pool_warps = float(weights.sum())
    share = (
        warp_nnz / pool_nnz
        if pool_nnz > 0
        else np.full(warp_nnz.shape[0], 1.0 / n_pool_warps)
    )
    dram = share * total_bytes

    from ..gpu.kernel import CounterHints
    from .common import _spmv_useful_bytes

    return KernelWork(
        name=name,
        compute_insts=compute,
        dram_bytes=dram,
        mem_ops=mem_ops,
        flops=2.0 * total_nnz * k,
        precision=precision,
        warp_weights=weights,
        k=k,
        hints=CounterHints(
            tex_hit_rate=hit,
            useful_bytes=_spmv_useful_bytes(
                total_nnz,
                float(all_rows.shape[0]),
                value_bytes=vb,
                index_bytes_per_elem=4.0,
                profile=csr.gather_profile,
                k=k,
            ),
        ),
    )


def work(
    csr: CSRMatrix,
    rows: np.ndarray,
    bin_index: int,
    device: DeviceSpec,
    k: int = 1,
) -> KernelWork:
    """Cost model for one bin-specific launch, standalone (no stream pool)."""
    rows = np.asarray(rows, dtype=np.int64)
    gang = gang_size_for_bin(bin_index)
    # Boundary-sector waste depends on how clustered the bin's rows are in
    # storage: real graphs exhibit strong degree locality (same-site web
    # pages, same-community users), so measure the adjacency directly —
    # the fraction of bin rows whose successor row is also in the bin.
    global_density = rows.shape[0] / max(1, csr.n_rows)
    if rows.shape[0] > 1:
        adjacency = float(np.mean(np.diff(rows) == 1))
    else:
        adjacency = 0.0
    density = float(np.clip(max(global_density, adjacency), 1e-6, 1.0))
    return gang_row_work(
        f"acsr-bin{bin_index}",
        csr.nnz_per_row[rows],
        vector_size=gang,
        device=device,
        n_cols=csr.n_cols,
        precision=csr.precision,
        profile=csr.gather_profile,
        # Bin rows are ascending, so even the one-thread bin-1 kernel
        # streams row spans in storage order — the coalesced model with a
        # density-dependent boundary charge applies to every bin.
        coalesced=True,
        row_density=density,
        indirect_rows=True,
        k=k,
    )
