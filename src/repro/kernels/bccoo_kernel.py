"""BCCOO kernel: blocked compressed COO SpMV (Yan et al. [27]).

BCCOO packs non-zeros into small dense blocks, replaces per-element row
indices with a bit-flag stream marking row transitions, and difference-
encodes column indices — index traffic drops to about a byte per element.
A matrix-wide segmented scan in shared memory replaces most atomics.  The
auto-tuned kernel is the *fastest single SpMV* in the paper's comparison
set; its weakness is the tuning itself (>300 configurations, each a
compile + trial), which Figure 4 shows costing ~161k SpMVs.
"""

from __future__ import annotations

from ..gpu.device import DeviceSpec, Precision
from ..gpu.kernel import KernelWork
from ..gpu.memory import GatherProfile
from .common import elementwise_work

#: Effective index bytes per element after bit flags + delta encoding.
INDEX_BYTES_PER_ELEM = 1.0


def work(
    stored_elements: int,
    n_rows: int,
    *,
    device: DeviceSpec,
    n_cols: int,
    precision: Precision,
    profile: GatherProfile,
    real_nnz: int | None = None,
    k: int = 1,
) -> KernelWork:
    """Cost model for the tuned BCCOO launch.

    ``stored_elements`` includes block padding (blocks are dense, so a
    block overlapping empty positions stores explicit zeros) and drives
    the traffic; ``real_nnz`` is the useful-flop count for reporting.
    """
    from dataclasses import replace

    from ..gpu.occupancy import KernelResources

    work = elementwise_work(
        "bccoo",
        total_elements=stored_elements,
        rows_spanned=n_rows,
        device=device,
        n_cols=n_cols,
        precision=precision,
        profile=profile,
        index_bytes_per_elem=INDEX_BYTES_PER_ELEM,
        reduction=True,
        flops=None if real_nnz is None else 2.0 * real_nnz * k,
        k=k,
    )
    # The matrix-wide segmented scan stages partials in shared memory
    # (two values per thread) and runs register-heavy.
    return replace(
        work,
        resources=KernelResources(
            threads_per_block=128,
            registers_per_thread=48,
            shared_bytes_per_block=2 * 128 * precision.value_bytes,
        ),
    )
