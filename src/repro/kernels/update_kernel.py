"""In-device CSR row-update kernel (Section VII).

For dynamic graphs, ACSR updates the CSR arrays *on the device* from a
compact change list instead of re-copying the whole matrix.  The paper's
kernel assigns a warp per updated row but only the warp's first thread
performs the edit (avoiding intra-warp divergence): it deletes the listed
columns, compacts the row leftward, then appends the insert list into the
row's reserved slack.  Delete and insert lists are sorted.

The numeric counterpart operates on :class:`repro.dynamic.dyncsr.DynCSR`;
this module provides the cost model for the kernel launch.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec, Precision, WARP_SIZE
from ..gpu.kernel import KernelWork
from ..gpu.memory import coalesced_bytes, scattered_bytes
from .common import ROW_SETUP_INSTS, launch_for_threads

#: Serial instructions per element moved/compared by the single active lane.
SERIAL_INSTS_PER_ELEM = 4.0


def work(
    row_lengths: np.ndarray,
    n_deletes_per_row: np.ndarray,
    n_inserts_per_row: np.ndarray,
    precision: Precision,
    device: DeviceSpec,
) -> KernelWork:
    """Cost of one update launch over the listed rows.

    Each updated row costs a merge scan of its current length (delete +
    compact), plus the insert append.  Work is serial within the single
    active lane, so instruction counts are per-element, not per-warp —
    exactly the trade-off the paper accepts to avoid divergence.
    """
    row_lengths = np.asarray(row_lengths, dtype=np.float64)
    dels = np.asarray(n_deletes_per_row, dtype=np.float64)
    ins = np.asarray(n_inserts_per_row, dtype=np.float64)
    if row_lengths.shape != dels.shape or row_lengths.shape != ins.shape:
        raise ValueError("per-row arrays must share a shape")
    n_rows = row_lengths.shape[0]
    if n_rows == 0:
        return KernelWork.empty("csr-update", precision)
    vb = precision.value_bytes

    # One warp per row: per-warp cost is that row's serial edit.
    touched = row_lengths + dels + ins
    compute = touched * SERIAL_INSTS_PER_ELEM + ROW_SETUP_INSTS
    # Row data is read and rewritten (compaction), plus the change lists.
    row_bytes = coalesced_bytes(row_lengths * (vb + 4)) * 2.0
    change_bytes = coalesced_bytes((dels + ins) * (vb + 4))
    dram = row_bytes + change_bytes + scattered_bytes(np.ones(n_rows))
    return KernelWork(
        name="csr-update",
        compute_insts=np.asarray(compute, dtype=np.float64),
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=np.maximum(1.0, np.ceil(touched * (vb + 4) / 128.0)),
        flops=0.0,
        precision=precision,
        launch=launch_for_threads(n_rows * WARP_SIZE),
    )
