"""Level-synchronous BFS as repeated SpMV (extension application).

The paper's Section I motivates SpMV as "a core kernel [for] graph
analytic domains" and cites the sparse-matrix view of graph operations
[15]; breadth-first search is the canonical example: one BFS level is one
SpMV of the frontier indicator over the transposed adjacency matrix on a
boolean semiring.  This module adds BFS to the application suite using
exactly the same pluggable SpMV backends as PageRank/HITS/RWR — each
level is charged one full SpMV, as in matrix-based BFS implementations of
the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.base import SpMVFormat
from ..formats.csr import CSRMatrix
from ..gpu.device import DeviceSpec
from .power_method import vector_ops_work
from ..gpu.simulator import simulate_kernel

#: Level marker for unreachable vertices.
UNREACHED = -1


def bfs_matrix(adjacency: CSRMatrix) -> CSRMatrix:
    """The BFS iteration operator: ``A^T`` with unit weights.

    ``(A^T x)[v] > 0`` iff some in-frontier vertex links to ``v``.
    """
    return adjacency.binarized().transpose()


@dataclass(frozen=True)
class BFSResult:
    """Levels per vertex plus the modelled device time."""

    levels: np.ndarray
    iterations: int
    modeled_time_s: float

    @property
    def n_reached(self) -> int:
        return int(np.count_nonzero(self.levels != UNREACHED))

    @property
    def eccentricity(self) -> int:
        """Greatest finite level (the source's eccentricity)."""
        reached = self.levels[self.levels != UNREACHED]
        return int(reached.max()) if reached.size else 0


def bfs(
    fmt: SpMVFormat,
    device: DeviceSpec,
    source: int,
    max_levels: int | None = None,
) -> BFSResult:
    """Breadth-first levels from ``source`` using backend ``fmt``.

    ``fmt`` must be built from :func:`bfs_matrix` output.  Each level
    costs one SpMV plus a frontier-update vector kernel; iteration stops
    when the frontier empties.
    """
    n = fmt.n_rows
    if fmt.n_cols != n:
        raise ValueError("BFS needs a square operator")
    if not 0 <= source < n:
        raise ValueError("source vertex out of range")
    max_levels = n if max_levels is None else max_levels
    if max_levels < 1:
        raise ValueError("max_levels must be >= 1")

    spmv_s = fmt.spmv_time_s(device)
    vec_s = simulate_kernel(
        device, vector_ops_work(n, 3, fmt.precision)
    ).time_s

    levels = np.full(n, UNREACHED, dtype=np.int64)
    levels[source] = 0
    frontier = np.zeros(n, dtype=fmt.precision.numpy_dtype)
    frontier[source] = 1.0

    iters = 0
    while iters < max_levels:
        reached = fmt.multiply(frontier)
        new = (reached > 0) & (levels == UNREACHED)
        iters += 1
        if not new.any():
            break
        levels[new] = iters
        frontier = np.zeros(n, dtype=fmt.precision.numpy_dtype)
        frontier[new] = 1.0

    return BFSResult(
        levels=levels,
        iterations=iters,
        modeled_time_s=iters * (spmv_s + vec_s),
    )
