"""Shared iteration machinery for the Section VI graph applications.

PageRank, HITS and RWR are all power methods: each iteration is one SpMV
plus a handful of length-n vector operations, repeated until the Euclidean
distance between successive iterates drops below ``epsilon`` ("Euclidean
distance was used as the convergence measure, with eps = 1e-6").

The driver runs the *numeric* iteration with the format under test and
accumulates *modelled* device time: the format's SpMV time plus a common
vector-update kernel (identical for every format, as on hardware where
axpy/norm kernels don't depend on the matrix layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..formats.base import SpMVFormat
from ..gpu.device import DeviceSpec, WARP_SIZE
from ..gpu.kernel import CounterHints, KernelWork
from ..gpu.memory import coalesced_bytes
from ..gpu.simulator import simulate_kernel
from ..kernels.common import launch_for_threads

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..obs.counters import CounterSet
    from ..obs.profiler import Profiler

#: Paper's convergence threshold (Section VI-C).
DEFAULT_EPSILON = 1e-6

#: Safety cap on iterations for non-convergent inputs.
MAX_ITERATIONS = 10_000

#: Length-n array passes billed per iteration by the common vector-update
#: kernel (axpy + distance reduction).  The serving layer's cost tables
#: (:mod:`repro.serve.plans`) must price vector work with the same pass
#: count to stay byte-identical with the drivers here.
DEFAULT_VECTOR_PASSES = 5


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """The paper's convergence measure (copy-free for float64 inputs)."""
    a64 = np.asarray(a, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    return float(np.linalg.norm(a64 - b64))


def vector_ops_work(n: int, passes: int, precision) -> KernelWork:
    """One iteration's vector-update kernel (axpy + distance reduction).

    ``passes`` counts length-n array reads/writes; the work is identical
    for every SpMV format, so it never changes *relative* results.  All
    full warps are identical, so two weighted entries (full warps + the
    partial trailing warp) describe the launch in O(1) instead of O(n/32).
    """
    if n <= 0:
        return KernelWork.empty("vector-ops", precision)
    vb = precision.value_bytes
    n_warps = -(-n // WARP_SIZE)
    rem = n % WARP_SIZE
    if rem and n_warps > 1:
        counts = np.array([float(WARP_SIZE), float(rem)])
        weights = np.array([float(n_warps - 1), 1.0])
    elif rem:
        counts = np.array([float(rem)])
        weights = np.array([1.0])
    else:
        counts = np.array([float(WARP_SIZE)])
        weights = np.array([float(n_warps)])
    compute = counts / WARP_SIZE * 4.0 * passes
    dram = coalesced_bytes(counts * vb) * float(passes)
    return KernelWork(
        name="vector-ops",
        compute_insts=np.asarray(compute, dtype=np.float64),
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=np.ones(counts.shape[0], dtype=np.float64),
        flops=2.0 * n * passes,
        precision=precision,
        launch=launch_for_threads(n),
        warp_weights=weights,
        # Pure streaming kernel: every requested byte is payload.
        hints=CounterHints(useful_bytes=float(n) * vb * passes),
    )


def _iteration_counters(
    fmt: SpMVFormat,
    device: DeviceSpec,
    n_elements: int,
    vector_passes: int,
    k: int,
    profiler: "Profiler",
) -> tuple["CounterSet", ...]:
    """Counter sets billed once per iteration (SpMV/SpMM + vector kernel).

    Derived under :meth:`Profiler.paused` so the derivation's own
    ``simulate_kernel`` calls stay out of the span tree; the totals are
    the *same floats* the iteration bill uses (``spmm_time_s`` and the
    vector kernel's ``time_s``), so a profiled run's recorded device time
    equals ``modeled_time_s`` exactly.
    """
    from ..obs.counters import launch_counters, with_totals
    from ..obs.profile import profile_format

    with profiler.paused():
        spmv = profile_format(fmt, device, k=k).total
        vec = vector_ops_work(n_elements, vector_passes, fmt.precision)
        vec_cs = launch_counters(device, vec, simulate_kernel(device, vec))
    label = f"spmm[k={k}]" if k > 1 else "spmv"
    return (with_totals(spmv, name=label), vec_cs)


def batch_round_widths(iteration_counts) -> tuple[int, ...]:
    """Per-round SpMM widths of a batch with the given iteration counts.

    Column ``j`` participates in rounds ``1..iteration_counts[j]``, so the
    vector-block width of round ``r`` is ``#{j : iterations[j] >= r}``.
    This is exactly the shrinking-active-set schedule
    :func:`run_power_method_batch` executes, reconstructed from the
    per-column iteration counts alone — which is what lets the serving
    layer (:mod:`repro.serve`) bill a batch without re-running numerics.
    """
    its = np.asarray(iteration_counts, dtype=np.int64)
    if its.ndim != 1 or its.size < 1:
        raise ValueError("iteration_counts must be a non-empty 1-D sequence")
    if its.min() < 1:
        raise ValueError("every column runs at least one round")
    # width of round r = k - #{j : iterations[j] <= r - 1}, via the
    # cumulative histogram of iteration counts.
    cum = np.cumsum(np.bincount(its))
    widths = np.empty(int(its.max()), dtype=np.int64)
    widths[0] = its.size
    if widths.size > 1:
        widths[1:] = its.size - cum[1 : int(its.max())]
    return tuple(int(w) for w in widths)


@dataclass(frozen=True)
class BatchBill:
    """Width-grouped cost ledger of one batched power-method run.

    ``widths[r-1]`` is the SpMM width of round ``r``; ``round_cost_s[w]``
    the modelled cost of one width-``w`` round (SpMM + vector kernel),
    keyed in order of first appearance.  All totals are computed as
    ``count x per-round cost`` grouped by width — never as a running
    float sum over rounds — so :meth:`total_s` for ``k = 1`` equals
    ``iterations * round_cost`` bit-for-bit (the scalar driver's bill)
    and :meth:`time_through_round` at the last round equals
    :meth:`total_s` exactly (identical terms, identical order).
    """

    widths: tuple[int, ...]
    round_cost_s: dict[int, float]

    def _grouped_sum(self, counts: dict[int, int]) -> float:
        return sum(
            counts[w] * cost
            for w, cost in self.round_cost_s.items()
            if w in counts
        )

    def _counts_through(self, round_no: int) -> dict[int, int]:
        counts: dict[int, int] = {}
        for w in self.widths[:round_no]:
            counts[w] = counts.get(w, 0) + 1
        return counts

    @property
    def total_s(self) -> float:
        """Modelled device seconds for the whole batch."""
        return self._grouped_sum(self._counts_through(len(self.widths)))

    def time_through_round(self, round_no: int) -> float:
        """Modelled seconds until the end of round ``round_no``.

        A column with ``iterations[j] == r`` completes at
        ``time_through_round(r)``; the longest column's value is exactly
        :attr:`total_s`.
        """
        if not 0 <= round_no <= len(self.widths):
            raise ValueError(f"round {round_no} outside the batch's schedule")
        return self._grouped_sum(self._counts_through(round_no))

    def column_times_s(self, iteration_counts) -> np.ndarray:
        """Per-column modelled completion times (float64 array).

        ``column_times_s(its)[j] == time_through_round(its[j])`` — the
        serving layer attributes each request's compute latency to the
        round in which its column converged.
        """
        its = np.asarray(iteration_counts, dtype=np.int64)
        memo: dict[int, float] = {}
        out = np.empty(its.shape[0], dtype=np.float64)
        for j, r in enumerate(its):
            r = int(r)
            if r not in memo:
                memo[r] = self.time_through_round(r)
            out[j] = memo[r]
        return out


def make_batch_bill(iteration_counts, cost_of_width) -> BatchBill:
    """Bill a batch schedule from iteration counts + a per-width cost fn.

    ``cost_of_width(w)`` must return the modelled cost of one width-``w``
    round; it is consulted once per distinct width, in order of first
    appearance, which reproduces :func:`run_power_method_batch`'s cost
    bookkeeping exactly.
    """
    widths = batch_round_widths(iteration_counts)
    cost: dict[int, float] = {}
    for w in widths:
        if w not in cost:
            cost[w] = float(cost_of_width(w))
    return BatchBill(widths=widths, round_cost_s=cost)


@dataclass(frozen=True)
class PowerMethodResult:
    """Outcome of one application run with one SpMV backend."""

    vector: np.ndarray
    iterations: int
    converged: bool
    #: Modelled device seconds (SpMV + vector kernels), excluding data
    #: copies and format transformation, per the Figure 6 methodology.
    modeled_time_s: float
    spmv_time_s: float

    @property
    def time_per_iteration_s(self) -> float:
        return self.modeled_time_s / max(1, self.iterations)


@dataclass(frozen=True)
class BatchPowerMethodResult:
    """Outcome of one *batched* application run (``k`` starts at once).

    Column ``j`` of ``vectors`` is bitwise identical to the single-column
    run from ``X0[:, j]`` — the batch changes the modelled time (one SpMM
    amortises the matrix traffic over the active columns), never the
    numerics.
    """

    #: ``(n, k)`` — one solution per start vector.
    vectors: np.ndarray
    #: Per-column iteration counts.
    iterations: np.ndarray
    #: Per-column convergence flags (``False`` = diverged or hit the cap).
    converged: np.ndarray
    #: Modelled device seconds for the whole batch (SpMM + vector kernels
    #: over the shrinking active set).
    modeled_time_s: float
    #: Initial vector-block width of the batch.
    k: int
    #: Per-column modelled completion times: column ``j`` finishes at the
    #: end of its last round, ``column_times_s[j] <= modeled_time_s``,
    #: with equality for the longest-running column (bit-for-bit — both
    #: come from the same :class:`BatchBill`).  The serving layer uses
    #: these to attribute batch latency to individual requests.
    column_times_s: np.ndarray | None = None

    @property
    def max_iterations_run(self) -> int:
        """The longest column's iteration count (the batch's depth)."""
        return int(self.iterations.max()) if self.iterations.size else 0


def run_power_method_batch(
    fmt: SpMVFormat,
    device: DeviceSpec,
    X0: np.ndarray,
    step: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = MAX_ITERATIONS,
    vector_passes: int = DEFAULT_VECTOR_PASSES,
    profiler: "Profiler | None" = None,
) -> BatchPowerMethodResult:
    """Iterate ``k`` power methods at once over a shrinking active set.

    ``X0`` has shape ``(n, k)``; ``step(X, AX, cols)`` receives the active
    columns of the iterate, their products, and the *original* column
    indices (so per-column terms like RWR's teleport can be selected), and
    must apply the single-column update column by column.  Each iteration
    charges ONE ``k_active``-wide SpMM plus one vector kernel over the
    active elements; columns drop out of the batch as they converge (or
    diverge), so late iterations of a mixed batch run narrow and cheap.

    For ``k = 1`` the result — numerics, iteration count, and modelled
    time — is exactly :func:`run_power_method`'s.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    X0 = np.asarray(X0)
    if X0.ndim != 2 or X0.shape[1] < 1:
        raise ValueError("X0 must be 2-D of shape (n, k) with k >= 1")
    n, k = X0.shape
    X = np.asarray(X0, dtype=fmt.precision.numpy_dtype).copy()
    X64 = X.astype(np.float64)
    iterations = np.zeros(k, dtype=np.int64)
    converged = np.zeros(k, dtype=bool)
    active = np.arange(k, dtype=np.int64)
    # Record the per-round width sequence; the bill is totalled at the
    # end by :class:`BatchBill` as ``count * per_iteration_cost`` per
    # width, which for ``k=1`` reproduces :func:`run_power_method`'s
    # ``iters * (spmv_s + vec_s)`` bit for bit (repeated ``+=`` would
    # drift in the last ulp).
    width_sequence: list[int] = []
    vec_s_cache: dict[int, float] = {}
    spmm_s_cache: dict[int, float] = {}
    counters_cache: dict[int, tuple] = {}
    round_no = 0
    while active.size:
        ka = int(active.size)
        if ka not in spmm_s_cache:
            spmm_s_cache[ka] = fmt.spmm_time_s(device, k=ka)
            vec_s_cache[ka] = simulate_kernel(
                device,
                vector_ops_work(n * ka, vector_passes, fmt.precision),
            ).time_s
        if profiler is not None and ka not in counters_cache:
            counters_cache[ka] = _iteration_counters(
                fmt, device, n * ka, vector_passes, ka, profiler
            )
        AX = fmt.multiply_many(X[:, active])
        X_next = step(X[:, active], AX, active).astype(X.dtype, copy=False)
        iterations[active] += 1
        width_sequence.append(ka)
        round_no += 1
        if profiler is not None:
            with profiler.span("iteration", i=round_no, k_active=ka):
                for cs in counters_cache[ka]:
                    profiler.record(cs)
        next64 = np.asarray(X_next, dtype=np.float64)
        dist = np.linalg.norm(next64 - X64[:, active], axis=0)
        X[:, active] = X_next
        X64[:, active] = next64
        finite = np.isfinite(dist)
        done_conv = finite & (dist <= epsilon)
        converged[active[done_conv]] = True
        keep = finite & ~done_conv
        if max_iterations is not None:
            keep &= iterations[active] < max_iterations
        active = active[keep]
    cost: dict[int, float] = {}
    for ka in width_sequence:
        if ka not in cost:
            cost[ka] = spmm_s_cache[ka] + vec_s_cache[ka]
    bill = BatchBill(widths=tuple(width_sequence), round_cost_s=cost)
    return BatchPowerMethodResult(
        vectors=X,
        iterations=iterations,
        converged=converged,
        modeled_time_s=bill.total_s,
        k=k,
        column_times_s=bill.column_times_s(iterations),
    )


def run_power_method(
    fmt: SpMVFormat,
    device: DeviceSpec,
    x0: np.ndarray,
    step: Callable[[np.ndarray, np.ndarray], np.ndarray],
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = MAX_ITERATIONS,
    vector_passes: int = DEFAULT_VECTOR_PASSES,
    profiler: "Profiler | None" = None,
) -> PowerMethodResult:
    """Iterate ``x <- step(x, A @ x)`` to convergence.

    ``step`` combines the SpMV product with the iterate (damping,
    teleport, normalisation...) and returns the next iterate.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    spmv_s = fmt.spmv_time_s(device)
    vec_s = simulate_kernel(
        device, vector_ops_work(x0.shape[0], vector_passes, fmt.precision)
    ).time_s
    iter_counters: tuple = ()
    if profiler is not None:
        iter_counters = _iteration_counters(
            fmt, device, x0.shape[0], vector_passes, 1, profiler
        )
    x = np.asarray(x0, dtype=fmt.precision.numpy_dtype).copy()
    # Hoist the convergence-check dtype handling: keep a float64 view of
    # the current iterate so each iteration converts only the *new*
    # iterate (and converts nothing at all in double precision), instead
    # of copying both vectors inside the distance every pass.
    x64 = np.asarray(x, dtype=np.float64)
    iters = 0
    converged = False
    while iters < max_iterations:
        ax = fmt.multiply(x)
        x_next = step(x, ax).astype(x.dtype, copy=False)
        iters += 1
        if profiler is not None:
            with profiler.span("iteration", i=iters):
                for cs in iter_counters:
                    profiler.record(cs)
        next64 = np.asarray(x_next, dtype=np.float64)
        dist = float(np.linalg.norm(next64 - x64))
        x64 = next64
        if not np.isfinite(dist):
            # Diverged (e.g. a non-substochastic operator); stop rather
            # than spin to the iteration cap.
            x = x_next
            break
        if dist <= epsilon:
            x = x_next
            converged = True
            break
        x = x_next
    return PowerMethodResult(
        vector=x,
        iterations=iters,
        converged=converged,
        modeled_time_s=iters * (spmv_s + vec_s),
        spmv_time_s=spmv_s,
    )
