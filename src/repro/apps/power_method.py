"""Shared iteration machinery for the Section VI graph applications.

PageRank, HITS and RWR are all power methods: each iteration is one SpMV
plus a handful of length-n vector operations, repeated until the Euclidean
distance between successive iterates drops below ``epsilon`` ("Euclidean
distance was used as the convergence measure, with eps = 1e-6").

The driver runs the *numeric* iteration with the format under test and
accumulates *modelled* device time: the format's SpMV time plus a common
vector-update kernel (identical for every format, as on hardware where
axpy/norm kernels don't depend on the matrix layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..formats.base import SpMVFormat
from ..gpu.device import DeviceSpec, WARP_SIZE
from ..gpu.kernel import CounterHints, KernelWork
from ..gpu.memory import coalesced_bytes
from ..gpu.simulator import simulate_kernel
from ..kernels.common import launch_for_threads

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..obs.counters import CounterSet
    from ..obs.profiler import Profiler

#: Paper's convergence threshold (Section VI-C).
DEFAULT_EPSILON = 1e-6

#: Safety cap on iterations for non-convergent inputs.
MAX_ITERATIONS = 10_000


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """The paper's convergence measure (copy-free for float64 inputs)."""
    a64 = np.asarray(a, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    return float(np.linalg.norm(a64 - b64))


def vector_ops_work(n: int, passes: int, precision) -> KernelWork:
    """One iteration's vector-update kernel (axpy + distance reduction).

    ``passes`` counts length-n array reads/writes; the work is identical
    for every SpMV format, so it never changes *relative* results.  All
    full warps are identical, so two weighted entries (full warps + the
    partial trailing warp) describe the launch in O(1) instead of O(n/32).
    """
    if n <= 0:
        return KernelWork.empty("vector-ops", precision)
    vb = precision.value_bytes
    n_warps = -(-n // WARP_SIZE)
    rem = n % WARP_SIZE
    if rem and n_warps > 1:
        counts = np.array([float(WARP_SIZE), float(rem)])
        weights = np.array([float(n_warps - 1), 1.0])
    elif rem:
        counts = np.array([float(rem)])
        weights = np.array([1.0])
    else:
        counts = np.array([float(WARP_SIZE)])
        weights = np.array([float(n_warps)])
    compute = counts / WARP_SIZE * 4.0 * passes
    dram = coalesced_bytes(counts * vb) * float(passes)
    return KernelWork(
        name="vector-ops",
        compute_insts=np.asarray(compute, dtype=np.float64),
        dram_bytes=np.asarray(dram, dtype=np.float64),
        mem_ops=np.ones(counts.shape[0], dtype=np.float64),
        flops=2.0 * n * passes,
        precision=precision,
        launch=launch_for_threads(n),
        warp_weights=weights,
        # Pure streaming kernel: every requested byte is payload.
        hints=CounterHints(useful_bytes=float(n) * vb * passes),
    )


def _iteration_counters(
    fmt: SpMVFormat,
    device: DeviceSpec,
    n_elements: int,
    vector_passes: int,
    k: int,
    profiler: "Profiler",
) -> tuple["CounterSet", ...]:
    """Counter sets billed once per iteration (SpMV/SpMM + vector kernel).

    Derived under :meth:`Profiler.paused` so the derivation's own
    ``simulate_kernel`` calls stay out of the span tree; the totals are
    the *same floats* the iteration bill uses (``spmm_time_s`` and the
    vector kernel's ``time_s``), so a profiled run's recorded device time
    equals ``modeled_time_s`` exactly.
    """
    from ..obs.counters import launch_counters, with_totals
    from ..obs.profile import profile_format

    with profiler.paused():
        spmv = profile_format(fmt, device, k=k).total
        vec = vector_ops_work(n_elements, vector_passes, fmt.precision)
        vec_cs = launch_counters(device, vec, simulate_kernel(device, vec))
    label = f"spmm[k={k}]" if k > 1 else "spmv"
    return (with_totals(spmv, name=label), vec_cs)


@dataclass(frozen=True)
class PowerMethodResult:
    """Outcome of one application run with one SpMV backend."""

    vector: np.ndarray
    iterations: int
    converged: bool
    #: Modelled device seconds (SpMV + vector kernels), excluding data
    #: copies and format transformation, per the Figure 6 methodology.
    modeled_time_s: float
    spmv_time_s: float

    @property
    def time_per_iteration_s(self) -> float:
        return self.modeled_time_s / max(1, self.iterations)


@dataclass(frozen=True)
class BatchPowerMethodResult:
    """Outcome of one *batched* application run (``k`` starts at once).

    Column ``j`` of ``vectors`` is bitwise identical to the single-column
    run from ``X0[:, j]`` — the batch changes the modelled time (one SpMM
    amortises the matrix traffic over the active columns), never the
    numerics.
    """

    #: ``(n, k)`` — one solution per start vector.
    vectors: np.ndarray
    #: Per-column iteration counts.
    iterations: np.ndarray
    #: Per-column convergence flags (``False`` = diverged or hit the cap).
    converged: np.ndarray
    #: Modelled device seconds for the whole batch (SpMM + vector kernels
    #: over the shrinking active set).
    modeled_time_s: float
    #: Initial vector-block width of the batch.
    k: int

    @property
    def max_iterations_run(self) -> int:
        """The longest column's iteration count (the batch's depth)."""
        return int(self.iterations.max()) if self.iterations.size else 0


def run_power_method_batch(
    fmt: SpMVFormat,
    device: DeviceSpec,
    X0: np.ndarray,
    step: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = MAX_ITERATIONS,
    vector_passes: int = 5,
    profiler: "Profiler | None" = None,
) -> BatchPowerMethodResult:
    """Iterate ``k`` power methods at once over a shrinking active set.

    ``X0`` has shape ``(n, k)``; ``step(X, AX, cols)`` receives the active
    columns of the iterate, their products, and the *original* column
    indices (so per-column terms like RWR's teleport can be selected), and
    must apply the single-column update column by column.  Each iteration
    charges ONE ``k_active``-wide SpMM plus one vector kernel over the
    active elements; columns drop out of the batch as they converge (or
    diverge), so late iterations of a mixed batch run narrow and cheap.

    For ``k = 1`` the result — numerics, iteration count, and modelled
    time — is exactly :func:`run_power_method`'s.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    X0 = np.asarray(X0)
    if X0.ndim != 2 or X0.shape[1] < 1:
        raise ValueError("X0 must be 2-D of shape (n, k) with k >= 1")
    n, k = X0.shape
    X = np.asarray(X0, dtype=fmt.precision.numpy_dtype).copy()
    X64 = X.astype(np.float64)
    iterations = np.zeros(k, dtype=np.int64)
    converged = np.zeros(k, dtype=bool)
    active = np.arange(k, dtype=np.int64)
    # Count iterations per active width; the bill is totalled at the end
    # as ``count * per_iteration_cost`` per width, which for ``k=1``
    # reproduces :func:`run_power_method`'s ``iters * (spmv_s + vec_s)``
    # bit for bit (repeated ``+=`` would drift in the last ulp).
    rounds: dict[int, int] = {}
    vec_s_cache: dict[int, float] = {}
    spmm_s_cache: dict[int, float] = {}
    counters_cache: dict[int, tuple] = {}
    round_no = 0
    while active.size:
        ka = int(active.size)
        if ka not in spmm_s_cache:
            spmm_s_cache[ka] = fmt.spmm_time_s(device, k=ka)
            vec_s_cache[ka] = simulate_kernel(
                device,
                vector_ops_work(n * ka, vector_passes, fmt.precision),
            ).time_s
        if profiler is not None and ka not in counters_cache:
            counters_cache[ka] = _iteration_counters(
                fmt, device, n * ka, vector_passes, ka, profiler
            )
        AX = fmt.multiply_many(X[:, active])
        X_next = step(X[:, active], AX, active).astype(X.dtype, copy=False)
        iterations[active] += 1
        rounds[ka] = rounds.get(ka, 0) + 1
        round_no += 1
        if profiler is not None:
            with profiler.span("iteration", i=round_no, k_active=ka):
                for cs in counters_cache[ka]:
                    profiler.record(cs)
        next64 = np.asarray(X_next, dtype=np.float64)
        dist = np.linalg.norm(next64 - X64[:, active], axis=0)
        X[:, active] = X_next
        X64[:, active] = next64
        finite = np.isfinite(dist)
        done_conv = finite & (dist <= epsilon)
        converged[active[done_conv]] = True
        keep = finite & ~done_conv
        if max_iterations is not None:
            keep &= iterations[active] < max_iterations
        active = active[keep]
    modeled = sum(
        count * (spmm_s_cache[ka] + vec_s_cache[ka])
        for ka, count in rounds.items()
    )
    return BatchPowerMethodResult(
        vectors=X,
        iterations=iterations,
        converged=converged,
        modeled_time_s=modeled,
        k=k,
    )


def run_power_method(
    fmt: SpMVFormat,
    device: DeviceSpec,
    x0: np.ndarray,
    step: Callable[[np.ndarray, np.ndarray], np.ndarray],
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = MAX_ITERATIONS,
    vector_passes: int = 5,
    profiler: "Profiler | None" = None,
) -> PowerMethodResult:
    """Iterate ``x <- step(x, A @ x)`` to convergence.

    ``step`` combines the SpMV product with the iterate (damping,
    teleport, normalisation...) and returns the next iterate.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    spmv_s = fmt.spmv_time_s(device)
    vec_s = simulate_kernel(
        device, vector_ops_work(x0.shape[0], vector_passes, fmt.precision)
    ).time_s
    iter_counters: tuple = ()
    if profiler is not None:
        iter_counters = _iteration_counters(
            fmt, device, x0.shape[0], vector_passes, 1, profiler
        )
    x = np.asarray(x0, dtype=fmt.precision.numpy_dtype).copy()
    # Hoist the convergence-check dtype handling: keep a float64 view of
    # the current iterate so each iteration converts only the *new*
    # iterate (and converts nothing at all in double precision), instead
    # of copying both vectors inside the distance every pass.
    x64 = np.asarray(x, dtype=np.float64)
    iters = 0
    converged = False
    while iters < max_iterations:
        ax = fmt.multiply(x)
        x_next = step(x, ax).astype(x.dtype, copy=False)
        iters += 1
        if profiler is not None:
            with profiler.span("iteration", i=iters):
                for cs in iter_counters:
                    profiler.record(cs)
        next64 = np.asarray(x_next, dtype=np.float64)
        dist = float(np.linalg.norm(next64 - x64))
        x64 = next64
        if not np.isfinite(dist):
            # Diverged (e.g. a non-substochastic operator); stop rather
            # than spin to the iteration cap.
            x = x_next
            break
        if dist <= epsilon:
            x = x_next
            converged = True
            break
        x = x_next
    return PowerMethodResult(
        vector=x,
        iterations=iters,
        converged=converged,
        modeled_time_s=iters * (spmv_s + vec_s),
        spmv_time_s=spmv_s,
    )
