"""HITS (Kleinberg's hubs & authorities) via the stacked single SpMV.

The paper follows [28] and folds the two HITS updates

    a^{k+1} = A^T h^k        h^{k+1} = A a^k

into one SpMV on the stacked operator (Equation 7)::

    [a]^{k+1}   [0    A^T] [a]^k
    [h]      =  [A    0  ] [h]

Scores are L2-normalised every iteration (required for convergence of the
power method) and iteration stops when both score vectors move less than
epsilon, matching Section VI-B.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..formats.base import SpMVFormat
from ..formats.csr import CSRMatrix
from ..gpu.device import DeviceSpec, Precision
from .power_method import (
    DEFAULT_EPSILON,
    MAX_ITERATIONS,
    PowerMethodResult,
    run_power_method,
)


def stacked_matrix(adjacency: CSRMatrix) -> CSRMatrix:
    """Build the ``2n x 2n`` operator ``[[0, A^T], [A, 0]]`` of Eq. 7."""
    n, m = adjacency.shape
    if n != m:
        raise ValueError("HITS needs a square adjacency matrix")
    at = adjacency.transpose()
    # Top block rows: A^T with columns shifted by n; bottom: A as-is.
    top_rows = np.repeat(
        np.arange(n, dtype=np.int64), at.nnz_per_row
    )
    bottom_rows = n + np.repeat(
        np.arange(n, dtype=np.int64), adjacency.nnz_per_row
    )
    rows = np.concatenate([top_rows, bottom_rows])
    cols = np.concatenate(
        [at.col_idx.astype(np.int64) + n, adjacency.col_idx.astype(np.int64)]
    )
    vals = np.concatenate([at.values, adjacency.values])
    return CSRMatrix.from_coo(
        rows,
        cols,
        vals,
        shape=(2 * n, 2 * n),
        precision=adjacency.precision,
        sum_duplicates=False,
    )


def hits(
    fmt: SpMVFormat,
    device: DeviceSpec,
    epsilon: float = DEFAULT_EPSILON,
    x0: np.ndarray | None = None,
    max_iterations: int = MAX_ITERATIONS,
    profiler=None,
) -> PowerMethodResult:
    """Run HITS with ``fmt`` built from :func:`stacked_matrix` output.

    The result vector holds ``[authority; hub]`` scores, L2-normalised.
    ``profiler`` records a ``hits`` span with per-iteration counters.
    """
    n2 = fmt.n_rows
    if fmt.n_cols != n2 or n2 % 2:
        raise ValueError("fmt must be the 2n x 2n stacked operator")
    n = n2 // 2
    start = (
        np.full(n2, 1.0 / n)
        if x0 is None
        else np.asarray(x0, dtype=np.float64)
    )
    if start.shape != (n2,):
        raise ValueError(f"x0 must have shape ({n2},)")

    def step(_x: np.ndarray, ax: np.ndarray) -> np.ndarray:
        # Normalise the authority and hub halves separately — the stacked
        # operator's spectrum is symmetric (+sigma/-sigma pairs), and
        # per-half normalisation is what makes the paired power iteration
        # converge, exactly as in split HITS implementations.
        v = ax.astype(np.float64).copy()
        for half in (v[:n], v[n:]):
            norm = np.linalg.norm(half)
            if norm > 0:
                half /= norm
        return v

    scope = (
        profiler.span("hits", format=fmt.name, device=device.name)
        if profiler is not None
        else nullcontext()
    )
    with scope:
        return run_power_method(
            fmt,
            device,
            start,
            step,
            epsilon=epsilon,
            max_iterations=max_iterations,
            vector_passes=6,  # extra norm pass vs PageRank
            profiler=profiler,
        )


def split_scores(vector: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a stacked result into ``(authority, hub)`` halves."""
    if vector.shape[0] % 2:
        raise ValueError("stacked vector must have even length")
    n = vector.shape[0] // 2
    return vector[:n], vector[n:]
