"""PageRank (Algorithm 5 of the paper).

``PR^{k+1} = (1-d) * PR^0 + d * (M @ PR^k)`` with the damping factor
``d = 0.85`` [20], where ``M`` is the row-normalised adjacency matrix
transposed so that rank flows along in-links.  Iteration stops when the
Euclidean distance between successive rank vectors falls below epsilon.

The SpMV backend is pluggable — the paper evaluates CSR, HYB and ACSR
(Figure 6-top) — and the returned result carries both the rank vector and
the modelled device time.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..formats.base import SpMVFormat
from ..formats.csr import CSRMatrix
from ..gpu.device import DeviceSpec
from .power_method import (
    DEFAULT_EPSILON,
    MAX_ITERATIONS,
    PowerMethodResult,
    run_power_method,
)

#: The paper's damping factor (Section VI-A, citing Brin & Page).
DEFAULT_DAMPING = 0.85


def google_matrix(adjacency: CSRMatrix) -> CSRMatrix:
    """The PageRank iteration matrix: transpose of the row-normalised
    adjacency ("Row normalized adjacency matrix", applied as ``A^T x``).

    Rows are normalised by their total link weight (``|values|`` sums),
    which reduces to out-degree for the usual unweighted adjacency.
    Dangling rows (no out-links) contribute nothing; their rank mass is
    re-injected by the teleport term, as in the paper's formulation.
    """
    weights = np.zeros(adjacency.n_rows, dtype=np.float64)
    row_ids = np.repeat(
        np.arange(adjacency.n_rows, dtype=np.int64), adjacency.nnz_per_row
    )
    np.add.at(weights, row_ids, np.abs(adjacency.values.astype(np.float64)))
    inv = np.divide(
        1.0, weights, out=np.zeros_like(weights), where=weights > 0
    )
    scale = np.repeat(inv, adjacency.nnz_per_row)
    normalized = CSRMatrix.from_arrays(
        (adjacency.values.astype(np.float64) * scale).astype(
            adjacency.values.dtype
        ),
        adjacency.col_idx,
        adjacency.row_off,
        adjacency.n_cols,
    )
    return normalized.transpose()


def pagerank(
    fmt: SpMVFormat,
    device: DeviceSpec,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = DEFAULT_EPSILON,
    x0: np.ndarray | None = None,
    max_iterations: int = MAX_ITERATIONS,
    profiler=None,
) -> PowerMethodResult:
    """Run PageRank with ``fmt`` (built from :func:`google_matrix` output).

    ``x0`` warm-starts the iteration — the dynamic-graph pipeline of
    Section VII passes the previous epoch's converged ranks, which is what
    cuts the iteration count there.

    ``profiler`` (a :class:`repro.obs.Profiler`) records one
    ``pagerank`` span with a nested span + counters per iteration.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = fmt.n_rows
    if fmt.n_cols != n:
        raise ValueError("PageRank needs a square matrix")
    pr0 = np.full(n, 1.0 / n)
    start = pr0 if x0 is None else np.asarray(x0, dtype=np.float64)
    if start.shape != (n,):
        raise ValueError(f"x0 must have shape ({n},)")
    teleport = (1.0 - damping) * pr0

    def step(_x: np.ndarray, ax: np.ndarray) -> np.ndarray:
        return teleport + damping * ax.astype(np.float64)

    scope = (
        profiler.span("pagerank", format=fmt.name, device=device.name)
        if profiler is not None
        else nullcontext()
    )
    with scope:
        return run_power_method(
            fmt,
            device,
            start,
            step,
            epsilon=epsilon,
            max_iterations=max_iterations,
            profiler=profiler,
        )
