"""Graph-mining applications of Section VI: PageRank, HITS, RWR.

All three are power methods whose run time is dominated by the SpMV; the
modules expose both the matrix *preparation* helpers (normalisation,
stacking) and the iteration drivers that accept any
:class:`~repro.formats.base.SpMVFormat` backend.
"""

from .bfs import BFSResult, bfs, bfs_matrix
from .hits import hits, split_scores, stacked_matrix
from .pagerank import DEFAULT_DAMPING, google_matrix, pagerank
from .power_method import (
    DEFAULT_EPSILON,
    DEFAULT_VECTOR_PASSES,
    MAX_ITERATIONS,
    BatchBill,
    BatchPowerMethodResult,
    PowerMethodResult,
    batch_round_widths,
    euclidean_distance,
    make_batch_bill,
    run_power_method,
    run_power_method_batch,
    vector_ops_work,
)
from .rwr import DEFAULT_RESTART, column_normalized, rwr, run_rwr_batch

__all__ = [
    "BFSResult",
    "BatchBill",
    "BatchPowerMethodResult",
    "batch_round_widths",
    "bfs",
    "bfs_matrix",
    "DEFAULT_DAMPING",
    "DEFAULT_EPSILON",
    "DEFAULT_RESTART",
    "DEFAULT_VECTOR_PASSES",
    "MAX_ITERATIONS",
    "make_batch_bill",
    "PowerMethodResult",
    "column_normalized",
    "euclidean_distance",
    "google_matrix",
    "hits",
    "pagerank",
    "run_power_method",
    "run_power_method_batch",
    "run_rwr_batch",
    "rwr",
    "split_scores",
    "stacked_matrix",
    "vector_ops_work",
]
