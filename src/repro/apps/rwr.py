"""Random Walk with Restart (Equation 8 of the paper).

``r_i^{k+1} = c * (W @ r_i^k) + (1 - c) * e_i`` where ``W`` is the
column-normalised adjacency matrix, ``c`` the restart probability
("similar to damping factor in PageRank") and ``e_i`` the indicator of the
query node.  Converges to the relevance of every node to node ``i``.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..formats.base import SpMVFormat
from ..formats.csr import CSRMatrix
from ..gpu.device import DeviceSpec
from .power_method import (
    DEFAULT_EPSILON,
    MAX_ITERATIONS,
    BatchPowerMethodResult,
    PowerMethodResult,
    run_power_method,
    run_power_method_batch,
)

#: Restart probability used by the harness (Tong et al. use c ~ 0.9).
DEFAULT_RESTART = 0.9


def column_normalized(adjacency: CSRMatrix) -> CSRMatrix:
    """``W``: the adjacency matrix with each *column* summing to one.

    Columns with no entries stay zero (their mass is restored by the
    restart term).
    """
    col_sums = np.zeros(adjacency.n_cols, dtype=np.float64)
    np.add.at(
        col_sums, adjacency.col_idx, np.abs(adjacency.values.astype(np.float64))
    )
    inv = np.divide(
        1.0, col_sums, out=np.zeros_like(col_sums), where=col_sums > 0
    )
    return CSRMatrix.from_arrays(
        (
            adjacency.values.astype(np.float64)
            * inv[adjacency.col_idx]
        ).astype(adjacency.values.dtype),
        adjacency.col_idx,
        adjacency.row_off,
        adjacency.n_cols,
    )


def rwr(
    fmt: SpMVFormat,
    device: DeviceSpec,
    seed_node: int,
    restart: float = DEFAULT_RESTART,
    epsilon: float = DEFAULT_EPSILON,
    x0: np.ndarray | None = None,
    max_iterations: int = MAX_ITERATIONS,
    profiler=None,
) -> PowerMethodResult:
    """Relevance of all nodes to ``seed_node`` under backend ``fmt``.

    ``fmt`` must be built from :func:`column_normalized` output.
    ``profiler`` records an ``rwr`` span with per-iteration counters.
    """
    n = fmt.n_rows
    if fmt.n_cols != n:
        raise ValueError("RWR needs a square matrix")
    if not 0 <= seed_node < n:
        raise ValueError("seed node out of range")
    if not 0.0 < restart < 1.0:
        raise ValueError("restart probability must be in (0, 1)")
    e_i = np.zeros(n, dtype=np.float64)
    e_i[seed_node] = 1.0
    start = e_i if x0 is None else np.asarray(x0, dtype=np.float64)
    if start.shape != (n,):
        raise ValueError(f"x0 must have shape ({n},)")
    teleport = (1.0 - restart) * e_i

    def step(_x: np.ndarray, ax: np.ndarray) -> np.ndarray:
        return restart * ax.astype(np.float64) + teleport

    scope = (
        profiler.span("rwr", format=fmt.name, device=device.name, seed=seed_node)
        if profiler is not None
        else nullcontext()
    )
    with scope:
        return run_power_method(
            fmt,
            device,
            start,
            step,
            epsilon=epsilon,
            max_iterations=max_iterations,
            profiler=profiler,
        )


def run_rwr_batch(
    fmt: SpMVFormat,
    device: DeviceSpec,
    query_nodes,
    restart: float = DEFAULT_RESTART,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = MAX_ITERATIONS,
    profiler=None,
) -> BatchPowerMethodResult:
    """Relevance vectors for a *batch* of query nodes in one walk.

    A recommender answering ``len(query_nodes)`` queries runs them as one
    batched power method: every iteration is a single SpMM over the
    still-unconverged columns instead of one SpMV per query, so the
    matrix is read once per iteration for the whole batch.  Column ``j``
    converges independently and is bitwise identical to
    ``rwr(fmt, device, query_nodes[j], ...)``.
    """
    n = fmt.n_rows
    if fmt.n_cols != n:
        raise ValueError("RWR needs a square matrix")
    queries = np.asarray(query_nodes, dtype=np.int64)
    if queries.ndim != 1 or queries.size < 1:
        raise ValueError("query_nodes must be a non-empty 1-D sequence")
    if queries.size and (queries.min() < 0 or queries.max() >= n):
        raise ValueError("query node out of range")
    if not 0.0 < restart < 1.0:
        raise ValueError("restart probability must be in (0, 1)")
    E = np.zeros((n, queries.size), dtype=np.float64)
    E[queries, np.arange(queries.size)] = 1.0
    teleport = (1.0 - restart) * E

    def step(_X: np.ndarray, AX: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return restart * AX.astype(np.float64) + teleport[:, cols]

    scope = (
        profiler.span(
            "rwr-batch", format=fmt.name, device=device.name, k=int(queries.size)
        )
        if profiler is not None
        else nullcontext()
    )
    with scope:
        return run_power_method_batch(
            fmt,
            device,
            E,
            step,
            epsilon=epsilon,
            max_iterations=max_iterations,
            profiler=profiler,
        )
