"""Offline-install shim.

``pip install -e .`` needs network access to fetch the PEP 517 build
backend; on air-gapped machines ``python setup.py develop`` installs the
package with nothing but a local setuptools.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
